#include "opt/order_bnb.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "opt/arena_search.hpp"
#include "util/arena.hpp"
#include "util/stopwatch.hpp"

namespace chronus::opt {

namespace {

/// Cycle check on the union graph (see header). Each switch contributes at
/// most two outgoing edges, so this is O(V). This map-based form is the
/// public round_is_loop_safe implementation and the CHRONUS_ARENA=off
/// search backend; the arena search uses FlatLoopCheck below (same
/// verdicts, flat epoch-stamped arrays instead of per-call maps).
bool union_graph_acyclic(const net::UpdateInstance& inst,
                         const std::set<net::NodeId>& updated,
                         const std::set<net::NodeId>& round) {
  const auto nodes = inst.touched_nodes();
  std::map<net::NodeId, std::vector<net::NodeId>> adj;
  for (const net::NodeId v : nodes) {
    const auto on = inst.old_next(v);
    const auto nn = inst.new_next(v);
    auto& out = adj[v];
    if (updated.count(v)) {
      if (nn) out.push_back(*nn);
    } else if (round.count(v)) {
      if (on) out.push_back(*on);
      if (nn && (!on || *nn != *on)) out.push_back(*nn);
    } else {
      if (on) out.push_back(*on);
    }
  }
  // Iterative three-color DFS.
  std::map<net::NodeId, int> color;  // 0 white, 1 grey, 2 black
  for (const net::NodeId start : nodes) {
    if (color[start] != 0) continue;
    std::vector<std::pair<net::NodeId, std::size_t>> stack{{start, 0}};
    color[start] = 1;
    while (!stack.empty()) {
      auto& [v, i] = stack.back();
      const auto it = adj.find(v);
      if (it == adj.end() || i >= it->second.size()) {
        color[v] = 2;
        stack.pop_back();
        continue;
      }
      const net::NodeId w = it->second[i++];
      if (!adj.count(w)) continue;  // sink (destination): no out edges
      const int c = color[w];
      if (c == 1) return false;
      if (c == 0) {
        color[w] = 1;
        stack.emplace_back(w, 0);
      }
    }
  }
  return true;
}

/// The arena search's union-graph cycle check: next-hop functions and the
/// touched-node set are flattened once per search, and every safe() call
/// reuses epoch-stamped color/adjacency arrays — no per-call allocation,
/// no tree lookups. Verdict-identical to union_graph_acyclic (both decide
/// acyclicity of the same union graph; held together by the differential
/// harness).
class FlatLoopCheck {
 public:
  FlatLoopCheck(util::Arena* arena, const net::UpdateInstance& inst)
      : nodes_(util::ArenaAllocator<net::NodeId>(arena)),
        old_nx_(util::ArenaAllocator<net::NodeId>(arena)),
        new_nx_(util::ArenaAllocator<net::NodeId>(arena)),
        stamp_(util::ArenaAllocator<std::uint64_t>(arena)),
        color_(util::ArenaAllocator<unsigned char>(arena)),
        out_(util::ArenaAllocator<net::NodeId>(arena)),
        out_n_(util::ArenaAllocator<unsigned char>(arena)),
        stack_(util::ArenaAllocator<Frame>(arena)) {
    const std::size_t n = inst.graph().node_count();
    const auto touched = inst.touched_nodes();
    nodes_.assign(touched.begin(), touched.end());
    old_nx_.assign(n, net::kInvalidNode);
    new_nx_.assign(n, net::kInvalidNode);
    for (const net::NodeId v : nodes_) {
      if (const auto on = inst.old_next(v)) old_nx_[v] = *on;
      if (const auto nn = inst.new_next(v)) new_nx_[v] = *nn;
    }
    stamp_.assign(n, 0);
    color_.assign(n, 0);
    out_.assign(2 * n, net::kInvalidNode);
    out_n_.assign(n, 0);
    stack_.reserve(nodes_.size());
  }

  /// Acyclicity with `round` membership decided by any predicate.
  template <typename Updated, typename RoundContains>
  bool safe_with(const Updated& updated, RoundContains in_round) {
    ++epoch_;
    for (const net::NodeId v : nodes_) {
      stamp_[v] = epoch_;
      color_[v] = 0;
      unsigned char cnt = 0;
      const net::NodeId on = old_nx_[v];
      const net::NodeId nn = new_nx_[v];
      if (updated.contains(v)) {
        if (nn != net::kInvalidNode) out_[2 * v + cnt++] = nn;
      } else if (in_round(v)) {
        if (on != net::kInvalidNode) out_[2 * v + cnt++] = on;
        if (nn != net::kInvalidNode && (on == net::kInvalidNode || nn != on)) {
          out_[2 * v + cnt++] = nn;
        }
      } else {
        if (on != net::kInvalidNode) out_[2 * v + cnt++] = on;
      }
      out_n_[v] = cnt;
    }
    for (const net::NodeId start : nodes_) {
      if (color_[start] != 0) continue;
      stack_.clear();
      stack_.push_back(Frame{start, 0});
      color_[start] = 1;
      while (!stack_.empty()) {
        Frame& f = stack_.back();
        if (f.i >= out_n_[f.v]) {
          color_[f.v] = 2;
          stack_.pop_back();
          continue;
        }
        const net::NodeId w = out_[2 * f.v + f.i++];
        if (stamp_[w] != epoch_) continue;  // sink: not a touched node
        const unsigned char c = color_[w];
        if (c == 1) return false;
        if (c == 0) {
          color_[w] = 1;
          stack_.push_back(Frame{w, 0});
        }
      }
    }
    return true;
  }

 private:
  struct Frame {
    net::NodeId v;
    unsigned char i;
  };

  util::ArenaVector<net::NodeId> nodes_;
  util::ArenaVector<net::NodeId> old_nx_;
  util::ArenaVector<net::NodeId> new_nx_;
  util::ArenaVector<std::uint64_t> stamp_;
  util::ArenaVector<unsigned char> color_;
  util::ArenaVector<net::NodeId> out_;
  util::ArenaVector<unsigned char> out_n_;
  util::ArenaVector<Frame> stack_;
  std::uint64_t epoch_ = 0;
};

/// A round under construction: sorted flat vector plus membership mask.
/// branch() inserts candidates in ascending order and erases in LIFO
/// order, so push_back/pop_back keep the vector sorted — iteration
/// matches the std::set round of the heap backend exactly.
class RoundVec {
 public:
  RoundVec(util::Arena* arena, std::size_t node_count)
      : v_(util::ArenaAllocator<net::NodeId>(arena)),
        mask_(arena, node_count) {}

  void insert(net::NodeId v) {
    CHRONUS_EXPECTS(v_.empty() || v_.back() < v,
                    "RoundVec inserts must be ascending");
    v_.push_back(v);
    mask_.insert(v);
  }
  void erase(net::NodeId v) {
    CHRONUS_EXPECTS(!v_.empty() && v_.back() == v,
                    "RoundVec erases must be LIFO");
    mask_.erase(v);
    v_.pop_back();
  }
  void clear() {
    for (const net::NodeId v : v_) mask_.erase(v);
    v_.clear();
  }

  bool contains(net::NodeId v) const { return mask_.contains(v); }
  bool empty() const { return v_.empty(); }
  auto begin() const { return v_.begin(); }
  auto end() const { return v_.end(); }

 private:
  util::ArenaVector<net::NodeId> v_;
  arena_search::NodeMask mask_;
};

// ---------------------------------------------------------------------------
// Search-state traits: the branch-and-bound is one template; the heap
// bundle keeps the original std::set / std::map<std::string> state (the
// CHRONUS_ARENA=off escape hatch), the arena bundle swaps in the flat
// structures. See mutp_bnb.cpp for the shared reasoning.

struct HeapTraits {
  // chronus-analyzer: allow(hot-alloc) — escape-hatch state, heap on purpose
  using Pending = std::set<net::NodeId>;
  // chronus-analyzer: allow(hot-alloc)
  using Updated = std::set<net::NodeId>;
  // chronus-analyzer: allow(hot-alloc)
  using CandVec = std::vector<net::NodeId>;
  // chronus-analyzer: allow(hot-alloc)
  using Round = std::set<net::NodeId>;

  // Pool slots are held by pointer so the reference a recursion frame
  // keeps across deeper calls survives pool growth.
  struct CandPool {
    // chronus-analyzer: allow(hot-alloc)
    std::vector<std::unique_ptr<CandVec>> pool;
    CandVec& at_depth(std::size_t d) {
      // chronus-analyzer: allow(hot-alloc)
      while (d >= pool.size()) pool.push_back(std::make_unique<CandVec>());
      pool[d]->clear();
      return *pool[d];
    }
  };

  struct RoundPool {
    // chronus-analyzer: allow(hot-alloc)
    std::vector<std::unique_ptr<Round>> pool;
    Round& at_depth(std::size_t d) {
      // chronus-analyzer: allow(hot-alloc)
      while (d >= pool.size()) pool.push_back(std::make_unique<Round>());
      pool[d]->clear();
      return *pool[d];
    }
  };

  struct Rounds {
    // chronus-analyzer: allow(hot-alloc)
    std::vector<std::vector<net::NodeId>> rounds;
    template <typename RoundT>
    void push(const RoundT& r) {
      rounds.emplace_back(r.begin(), r.end());
    }
    void pop() { rounds.pop_back(); }
    std::size_t size() const { return rounds.size(); }
    std::vector<std::vector<net::NodeId>> snapshot() const { return rounds; }
  };

  struct Memo {
    // chronus-analyzer: allow(hot-alloc)
    std::map<std::string, std::size_t> memo;  // pending-set -> fewest rounds

    template <typename PendingT>
    bool probe(const PendingT& pending, std::size_t used) {
      // chronus-analyzer: allow(hot-alloc)
      std::ostringstream os;
      for (const net::NodeId v : pending) os << v << ',';
      const std::string key = os.str();
      const auto it = memo.find(key);
      if (it != memo.end() && it->second <= used) return true;
      memo[key] = used;
      return false;
    }
  };

  struct LoopCheck {
    const net::UpdateInstance* inst = nullptr;

    bool safe(const Updated& updated, const Round& round) {
      return round_is_loop_safe(*inst, updated, round);
    }
    bool safe_single(const Updated& updated, net::NodeId v) {
      return round_is_loop_safe(*inst, updated, {v});
    }
  };

  struct Bundle {
    Memo memo;
    LoopCheck loops;
    CandPool cands;
    RoundPool round_pool;
    Rounds current;

    explicit Bundle(const net::UpdateInstance& inst) { loops.inst = &inst; }
  };
};

struct ArenaTraits {
  using Pending = arena_search::SortedNodeVec;
  using Updated = arena_search::NodeMask;
  using CandVec = util::ArenaVector<net::NodeId>;
  using Round = RoundVec;

  // Pool slots are arena_new'd so their addresses survive pool growth
  // (see HeapTraits::CandPool).
  struct CandPool {
    util::Arena* arena;
    util::ArenaVector<CandVec*> pool;

    explicit CandPool(util::Arena* a)
        : arena(a), pool(util::ArenaAllocator<CandVec*>(a)) {}
    CandVec& at_depth(std::size_t d) {
      while (d >= pool.size()) {
        pool.push_back(arena_search::arena_new<CandVec>(
            arena, util::ArenaAllocator<net::NodeId>(arena)));
      }
      pool[d]->clear();
      return *pool[d];
    }
  };

  struct RoundPool {
    util::Arena* arena;
    std::size_t node_count;
    util::ArenaVector<Round*> pool;

    RoundPool(util::Arena* a, std::size_t n)
        : arena(a), node_count(n), pool(util::ArenaAllocator<Round*>(a)) {}
    Round& at_depth(std::size_t d) {
      while (d >= pool.size()) {
        pool.push_back(arena_search::arena_new<Round>(arena, arena,
                                                      node_count));
      }
      pool[d]->clear();
      return *pool[d];
    }
  };

  /// Stack of completed rounds: per-depth slots are assigned in place so
  /// a long search never grows the arena with dead round copies.
  struct Rounds {
    util::Arena* arena;
    util::ArenaVector<util::ArenaVector<net::NodeId>*> pool;
    std::size_t n = 0;

    explicit Rounds(util::Arena* a)
        : arena(a),
          pool(util::ArenaAllocator<util::ArenaVector<net::NodeId>*>(a)) {}
    template <typename RoundT>
    void push(const RoundT& r) {
      if (n == pool.size()) {
        pool.push_back(
            arena_search::arena_new<util::ArenaVector<net::NodeId>>(
                arena, util::ArenaAllocator<net::NodeId>(arena)));
      }
      pool[n]->assign(r.begin(), r.end());
      ++n;
    }
    void pop() { --n; }
    std::size_t size() const { return n; }
    std::vector<std::vector<net::NodeId>> snapshot() const {
      std::vector<std::vector<net::NodeId>> out;
      out.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        out.emplace_back(pool[i]->begin(), pool[i]->end());
      }
      return out;
    }
  };

  struct Memo {
    util::ArenaString key;  // reused scratch; contents rebuilt per probe
    std::map<util::ArenaString, std::size_t, std::less<util::ArenaString>,
             util::ArenaAllocator<
                 std::pair<const util::ArenaString, std::size_t>>>
        memo;

    explicit Memo(util::Arena* a)
        : key(util::ArenaAllocator<char>(a)),
          memo(std::less<util::ArenaString>(),
               util::ArenaAllocator<
                   std::pair<const util::ArenaString, std::size_t>>(a)) {}

    template <typename PendingT>
    bool probe(const PendingT& pending, std::size_t used) {
      key.clear();
      for (const net::NodeId v : pending) arena_search::append_u32(key, v);
      const auto it = memo.find(key);
      if (it != memo.end()) {
        if (it->second <= used) return true;
        it->second = used;
        return false;
      }
      memo.emplace(key, used);
      return false;
    }
  };

  struct LoopCheck {
    FlatLoopCheck flat;

    LoopCheck(util::Arena* a, const net::UpdateInstance& inst)
        : flat(a, inst) {}
    bool safe(const Updated& updated, const Round& round) {
      return flat.safe_with(updated,
                            [&round](net::NodeId w) { return round.contains(w); });
    }
    bool safe_single(const Updated& updated, net::NodeId v) {
      return flat.safe_with(updated,
                            [v](net::NodeId w) { return w == v; });
    }
  };

  struct Bundle {
    Memo memo;
    LoopCheck loops;
    CandPool cands;
    RoundPool round_pool;
    Rounds current;

    Bundle(util::Arena* a, const net::UpdateInstance& inst)
        : memo(a),
          loops(a, inst),
          cands(a),
          round_pool(a, inst.graph().node_count()),
          current(a) {}
  };
};

template <typename Traits>
struct Search {
  const net::UpdateInstance* inst = nullptr;
  util::Deadline deadline{0};

  std::size_t incumbent = std::numeric_limits<std::size_t>::max();
  std::vector<std::vector<net::NodeId>> best;
  bool found = false;
  bool timed_out = false;
  std::uint64_t nodes = 0;
  std::uint64_t prunes = 0;
  std::uint64_t memo_hits = 0;
  std::uint64_t incumbent_updates = 0;  // dfs-internal only (see mutp_bnb)
  typename Traits::Bundle b;

  explicit Search(typename Traits::Bundle bundle) : b(std::move(bundle)) {}

  void dfs(std::size_t depth, typename Traits::Pending& pending,
           typename Traits::Updated& updated);
  void branch(std::size_t depth, typename Traits::Pending& pending,
              typename Traits::Updated& updated,
              const typename Traits::CandVec& cand, std::size_t idx,
              typename Traits::Round& round);
};

template <typename Traits>
void Search<Traits>::dfs(std::size_t depth, typename Traits::Pending& pending,
                         typename Traits::Updated& updated) {
  if (timed_out || deadline.expired()) {
    timed_out = true;
    return;
  }
  ++nodes;
  if (pending.empty()) {
    if (b.current.size() < incumbent) {
      incumbent = b.current.size();
      best = b.current.snapshot();
      found = true;
      ++incumbent_updates;
    }
    return;
  }
  if (b.current.size() + 1 >= incumbent) {
    ++prunes;
    return;
  }

  if (b.memo.probe(pending, b.current.size())) {
    ++memo_hits;
    return;
  }

  typename Traits::CandVec& cand = b.cands.at_depth(depth);
  for (const net::NodeId v : pending) {
    if (b.loops.safe_single(updated, v)) cand.push_back(v);
  }
  if (cand.empty()) return;  // stuck: no single switch is safe

  typename Traits::Round& round = b.round_pool.at_depth(depth);
  branch(depth, pending, updated, cand, 0, round);
}

template <typename Traits>
void Search<Traits>::branch(std::size_t depth,
                            typename Traits::Pending& pending,
                            typename Traits::Updated& updated,
                            const typename Traits::CandVec& cand,
                            std::size_t idx, typename Traits::Round& round) {
  if (timed_out || deadline.expired()) {
    timed_out = true;
    return;
  }
  if (idx == cand.size()) {
    if (round.empty()) return;
    for (const net::NodeId v : round) {
      pending.erase(v);
      updated.insert(v);
    }
    b.current.push(round);
    dfs(depth + 1, pending, updated);
    b.current.pop();
    for (const net::NodeId v : round) {
      updated.erase(v);
      pending.insert(v);
    }
    return;
  }
  const net::NodeId v = cand[idx];
  round.insert(v);
  if (b.loops.safe(updated, round)) {
    branch(depth, pending, updated, cand, idx + 1, round);
  }
  round.erase(v);
  branch(depth, pending, updated, cand, idx + 1, round);
}

std::vector<std::vector<net::NodeId>> greedy_maximal(
    const net::UpdateInstance& inst, std::set<net::NodeId> pending,
    std::set<net::NodeId> updated, const util::Deadline& deadline) {
  std::vector<std::vector<net::NodeId>> rounds;
  while (!pending.empty()) {
    std::set<net::NodeId> round;
    for (const net::NodeId v : pending) {
      if (deadline.expired()) return {};
      round.insert(v);
      if (!round_is_loop_safe(inst, updated, round)) round.erase(v);
    }
    if (round.empty()) return {};  // stuck
    for (const net::NodeId v : round) {
      pending.erase(v);
      updated.insert(v);
    }
    rounds.emplace_back(round.begin(), round.end());
  }
  return rounds;
}

/// What solve_order_replacement needs back from either instantiation.
struct SearchOutcome {
  std::vector<std::vector<net::NodeId>> best;
  bool found = false;
  bool timed_out = false;
  std::uint64_t nodes = 0;
  std::uint64_t prunes = 0;
  std::uint64_t memo_hits = 0;
  std::uint64_t incumbent_updates = 0;
};

template <typename Traits>
SearchOutcome finish(Search<Traits>& s) {
  SearchOutcome o;
  o.best = std::move(s.best);
  o.found = s.found;
  o.timed_out = s.timed_out;
  o.nodes = s.nodes;
  o.prunes = s.prunes;
  o.memo_hits = s.memo_hits;
  o.incumbent_updates = s.incumbent_updates;
  return o;
}

SearchOutcome search_heap(const net::UpdateInstance& inst,
                          const util::Deadline& deadline,
                          const std::set<net::NodeId>& pending_in,
                          const std::set<net::NodeId>& pre_installed,
                          const std::vector<std::vector<net::NodeId>>& greedy) {
  Search<HeapTraits> s{HeapTraits::Bundle(inst)};
  s.inst = &inst;
  s.deadline = deadline;
  if (!greedy.empty()) {
    s.found = true;
    s.best = greedy;
    s.incumbent = greedy.size();
  }
  // chronus-analyzer: allow(hot-alloc)
  std::set<net::NodeId> pending = pending_in;
  // chronus-analyzer: allow(hot-alloc)
  std::set<net::NodeId> updated = pre_installed;
  s.dfs(0, pending, updated);
  return finish(s);
}

SearchOutcome search_arena(const net::UpdateInstance& inst,
                           const util::Deadline& deadline,
                           const std::set<net::NodeId>& pending_in,
                           const std::set<net::NodeId>& pre_installed,
                           const std::vector<std::vector<net::NodeId>>& greedy) {
  util::Arena arena;
  util::ArenaScope claim(arena);
  Search<ArenaTraits> s{ArenaTraits::Bundle(&arena, inst)};
  s.inst = &inst;
  s.deadline = deadline;
  if (!greedy.empty()) {
    s.found = true;
    s.best = greedy;
    s.incumbent = greedy.size();
  }
  ArenaTraits::Pending pending(&arena);
  pending.assign_sorted(pending_in.begin(), pending_in.end());
  ArenaTraits::Updated updated(&arena, inst.graph().node_count());
  for (const net::NodeId v : pre_installed) updated.insert(v);
  s.dfs(0, pending, updated);
  SearchOutcome o = finish(s);
  const util::ArenaStats& st = arena.stats();
  obs::add("arena.order.bytes", st.bytes_requested);
  obs::add("arena.order.allocs", st.allocs);
  obs::add("arena.order.chunks", st.chunks);
  obs::add("arena.order.high_water", st.high_water);
  return o;
}

}  // namespace

bool round_is_loop_safe(const net::UpdateInstance& inst,
                        const std::set<net::NodeId>& updated,
                        const std::set<net::NodeId>& round) {
  return union_graph_acyclic(inst, updated, round);
}

OrderResult solve_order_replacement(const net::UpdateInstance& inst,
                                    const OrderOptions& opts) {
  CHRONUS_SPAN("order.solve");
  OrderResult res;
  const auto to_update = inst.switches_to_update();
  if (to_update.empty()) {
    res.feasible = true;
    res.proved_optimal = true;
    res.message = "nothing to update";
    return res;
  }
  std::set<net::NodeId> pending(to_update.begin(), to_update.end());

  // Switches with no old rule carry no traffic; installing their rules
  // first is always safe and avoids transient blackholes once upstream
  // switches flip. They form a preliminary round outside the optimization.
  std::vector<net::NodeId> fresh;
  for (auto it = pending.begin(); it != pending.end();) {
    if (!inst.old_next(*it)) {
      fresh.push_back(*it);
      it = pending.erase(it);
    } else {
      ++it;
    }
  }
  if (pending.empty()) {
    res.feasible = true;
    res.proved_optimal = true;
    res.rounds.push_back(fresh);
    return res;
  }
  const std::set<net::NodeId> pre_installed(fresh.begin(), fresh.end());

  const util::Deadline deadline(opts.timeout_sec);
  const auto greedy = greedy_maximal(inst, pending, pre_installed, deadline);
  const auto with_fresh_round = [&](std::vector<std::vector<net::NodeId>> rounds) {
    if (!fresh.empty()) rounds.insert(rounds.begin(), fresh);
    return rounds;
  };

  if (pending.size() > opts.exact_limit) {
    res.feasible = !greedy.empty();
    res.timed_out = deadline.expired();
    res.rounds = with_fresh_round(greedy);
    res.message = res.timed_out ? "deadline hit during greedy-maximal"
                                : "greedy-maximal (instance above exact_limit)";
    return res;
  }

  const SearchOutcome s =
      util::arena_enabled()
          ? search_arena(inst, deadline, pending, pre_installed, greedy)
          : search_heap(inst, deadline, pending, pre_installed, greedy);

  obs::add("order.calls");
  obs::add("order.nodes_visited", s.nodes);
  obs::add("order.prunes", s.prunes);
  obs::add("order.memo_hits", s.memo_hits);
  obs::add("order.incumbent_updates", s.incumbent_updates);
  if (s.timed_out) obs::add("order.timeouts");

  res.timed_out = s.timed_out;
  res.nodes_explored = s.nodes;
  res.feasible = s.found;
  res.rounds = with_fresh_round(s.best);
  res.proved_optimal = s.found && !s.timed_out;
  if (s.timed_out) res.message = "deadline hit; incumbent returned";
  if (!s.found) res.message = "no loop-free round sequence found";
  return res;
}

}  // namespace chronus::opt
