#include "opt/mutp_bnb.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <set>
#include <sstream>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "timenet/transition_state.hpp"
#include "timenet/verifier.hpp"
#include "util/stopwatch.hpp"

namespace chronus::opt {

namespace {

bool is_clean(const net::UpdateInstance& inst,
              const timenet::UpdateSchedule& sched, double deadline_sec) {
  timenet::VerifyOptions vo;
  vo.first_violation_only = true;
  vo.deadline_sec = deadline_sec;
  const auto report = verify_transition(inst, sched, vo);
  return !report.aborted && report.ok();
}

struct Search {
  const net::UpdateInstance* inst = nullptr;
  timenet::TransitionState* state = nullptr;
  util::Deadline deadline{0};
  int max_candidates = 16;
  std::int64_t drain = 0;

  std::int64_t incumbent = std::numeric_limits<std::int64_t>::max();
  timenet::UpdateSchedule best;
  bool found = false;
  bool timed_out = false;
  bool truncated = false;
  std::uint64_t nodes = 0;
  std::uint64_t prunes = 0;
  std::uint64_t memo_hits = 0;
  // Incumbent improvements found *inside* the search; the greedy seed is
  // excluded so mutp.nodes_visited >= mutp.incumbent_updates always holds
  // (property-tested in tests/property_test.cpp).
  std::uint64_t incumbent_updates = 0;
  std::map<std::string, timenet::TimePoint> memo;

  void dfs(timenet::TimePoint t, std::set<net::NodeId>& pending);
  void branch(timenet::TimePoint t, std::set<net::NodeId>& pending,
              const std::vector<net::NodeId>& cand, std::size_t idx);

  std::string state_key(timenet::TimePoint t,
                        const timenet::UpdateSchedule& sched,
                        const std::set<net::NodeId>& pending) const {
    std::ostringstream os;
    for (const net::NodeId v : pending) os << v << ',';
    os << ';';
    // Updates older than the drain bound cannot influence any class that is
    // still in flight; only the recent update pattern (relative to t)
    // matters for the remaining subproblem.
    for (const auto& [v, tv] : sched.entries()) {
      if (tv >= t - drain) os << v << ':' << (t - tv) << ',';
    }
    return os.str();
  }
};

void Search::dfs(timenet::TimePoint t, std::set<net::NodeId>& pending) {
  if (timed_out || deadline.expired()) {
    timed_out = true;
    return;
  }
  ++nodes;
  const timenet::UpdateSchedule& sched = state->schedule();
  if (pending.empty()) {
    const std::int64_t makespan =
        sched.empty() ? 0 : sched.last_time().count() + 1;
    if (makespan < incumbent) {
      incumbent = makespan;
      best = sched;
      found = true;
      ++incumbent_updates;
    }
    return;
  }
  // Any completion still updates a switch at >= t, so makespan >= t + 1.
  if (t.count() + 1 >= incumbent) {
    ++prunes;
    return;
  }

  const std::string key = state_key(t, sched, pending);
  const auto it = memo.find(key);
  if (it != memo.end() && it->second <= t) {
    ++memo_hits;
    return;
  }
  memo[key] = t;

  std::vector<net::NodeId> cand;
  for (const net::NodeId v : pending) {
    if (deadline.expired()) {  // candidate checks dominate at large n
      timed_out = true;
      return;
    }
    if (state->try_update(v, t)) {
      cand.push_back(v);
      state->undo();
    }
  }
  if (static_cast<int>(cand.size()) > max_candidates) {
    truncated = true;
    cand.resize(static_cast<std::size_t>(max_candidates));
  }
  branch(t, pending, cand, 0);
}

void Search::branch(timenet::TimePoint t, std::set<net::NodeId>& pending,
                    const std::vector<net::NodeId>& cand, std::size_t idx) {
  if (timed_out || deadline.expired()) {
    timed_out = true;
    return;
  }
  if (idx == cand.size()) {
    // Waiting before the very first update only shifts the schedule; skip.
    if (state->schedule().empty()) return;
    dfs(t + 1, pending);
    return;
  }
  const net::NodeId v = cand[idx];
  // Include v (checked jointly with the already-included candidates) first:
  // maximizing per-step parallelism finds strong incumbents early.
  if (state->try_update(v, t)) {
    pending.erase(v);
    branch(t, pending, cand, idx + 1);
    pending.insert(v);
    state->undo();
  }
  branch(t, pending, cand, idx + 1);
}

}  // namespace

MutpResult solve_mutp(const net::UpdateInstance& inst,
                      const MutpOptions& opts) {
  CHRONUS_SPAN("mutp.solve");
  MutpResult res;
  const auto to_update = inst.switches_to_update();
  if (to_update.empty()) {
    res.status = core::ScheduleStatus::kFeasible;
    res.proved_optimal = true;
    res.message = "nothing to update";
    return res;
  }

  const net::Graph& g = inst.graph();
  Search s;
  s.inst = &inst;
  s.deadline = util::Deadline(opts.timeout_sec);
  s.max_candidates = opts.max_candidates_exact;
  s.drain = static_cast<std::int64_t>(g.node_count() + 2) * g.max_delay();

  // Greedy incumbent: bounds the search and survives timeouts. The pure
  // (unguarded) greedy is tried first — it is the only variant that scales
  // to the Fig. 10 sizes — and its schedule is accepted after one exact
  // verification; the guarded greedy is the fallback on small instances.
  core::GreedyOptions fast;
  fast.record_steps = false;
  fast.guard_with_verifier = false;
  core::ScheduleResult greedy = core::greedy_schedule(inst, fast);
  // The incumbent's single validation pass gets a small floor so that a
  // micro-timeout (used to probe timeout behaviour) does not discard an
  // easily-verified incumbent on small instances.
  const double validate_budget =
      opts.timeout_sec > 0 ? std::max(opts.timeout_sec, 0.1) : 0.0;
  const bool fast_clean =
      greedy.feasible() && is_clean(inst, greedy.schedule, validate_budget);
  if (!fast_clean && to_update.size() <= 200) {
    core::GreedyOptions guarded;
    guarded.record_steps = false;
    greedy = core::greedy_schedule(inst, guarded);
  }
  if (greedy.feasible() &&
      (fast_clean || is_clean(inst, greedy.schedule, validate_budget))) {
    s.found = true;
    s.best = greedy.schedule;
    s.incumbent =
        greedy.schedule.empty() ? 0 : greedy.schedule.last_time().count() + 1;
  } else {
    // Horizon cap: beyond this every in-flight class has drained twice over;
    // a schedule longer than it gains nothing.
    s.incumbent = 2 * s.drain + static_cast<std::int64_t>(to_update.size()) + 2;
  }

  timenet::TransitionState state(inst);
  s.state = &state;
  std::set<net::NodeId> pending(to_update.begin(), to_update.end());
  if (s.deadline.expired()) {
    s.timed_out = true;  // the incumbent phase already consumed the budget
  } else {
    s.dfs(timenet::TimePoint{0}, pending);
  }

  obs::add("mutp.calls");
  obs::add("mutp.nodes_visited", s.nodes);
  obs::add("mutp.prunes", s.prunes);
  obs::add("mutp.memo_hits", s.memo_hits);
  obs::add("mutp.incumbent_updates", s.incumbent_updates);
  if (s.timed_out) obs::add("mutp.timeouts");

  res.timed_out = s.timed_out;
  res.nodes_explored = s.nodes;
  if (s.found) {
    res.status = core::ScheduleStatus::kFeasible;
    res.schedule = s.best;
    res.makespan = s.best.empty() ? 0 : s.best.last_time().count() + 1;
    res.proved_optimal = !s.timed_out && !s.truncated;
    if (s.truncated) res.message = "branching truncated (candidate cap)";
    if (s.timed_out) res.message = "deadline hit; incumbent returned";
    return res;
  }

  res.message = s.timed_out ? "deadline hit; no feasible schedule found"
                            : "no congestion- and loop-free schedule exists";
  if (opts.force_complete) {
    core::GreedyOptions forced;
    forced.record_steps = false;
    forced.force_complete = true;
    const core::ScheduleResult be = core::greedy_schedule(inst, forced);
    res.schedule = be.schedule;
    res.makespan = be.schedule.empty() ? 0 : be.schedule.last_time().count() + 1;
    res.status = core::ScheduleStatus::kBestEffort;
  }
  return res;
}

}  // namespace chronus::opt
