#include "opt/mutp_bnb.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "opt/arena_search.hpp"
#include "timenet/transition_state.hpp"
#include "timenet/verifier.hpp"
#include "util/arena.hpp"
#include "util/stopwatch.hpp"

namespace chronus::opt {

namespace {

bool is_clean(const net::UpdateInstance& inst,
              const timenet::UpdateSchedule& sched, double deadline_sec) {
  timenet::VerifyOptions vo;
  vo.first_violation_only = true;
  vo.deadline_sec = deadline_sec;
  const auto report = verify_transition(inst, sched, vo);
  return !report.aborted && report.ok();
}

// ---------------------------------------------------------------------------
// Search-state traits. The branch-and-bound below is written once, as a
// template over this bundle; HeapTraits keeps the original std::set /
// std::map<std::string> / ostringstream state (the CHRONUS_ARENA=off
// escape hatch), ArenaTraits swaps in bump-allocated flat structures and
// binary memo keys. Identical control flow by construction; identical
// memo behaviour because both key encodings are injective on the same
// tuples (see arena_search.hpp).

struct HeapTraits {
  // chronus-analyzer: allow(hot-alloc) — escape-hatch state, heap on purpose
  using Pending = std::set<net::NodeId>;
  // chronus-analyzer: allow(hot-alloc)
  using CandVec = std::vector<net::NodeId>;

  // Pool slots are held by pointer so the reference a recursion frame
  // keeps across deeper calls survives pool growth.
  struct CandPool {
    // chronus-analyzer: allow(hot-alloc)
    std::vector<std::unique_ptr<CandVec>> pool;
    CandVec& at_depth(std::size_t d) {
      // chronus-analyzer: allow(hot-alloc)
      while (d >= pool.size()) pool.push_back(std::make_unique<CandVec>());
      pool[d]->clear();
      return *pool[d];
    }
  };

  struct Memo {
    std::int64_t drain = 0;
    // chronus-analyzer: allow(hot-alloc)
    std::map<std::string, timenet::TimePoint> memo;

    /// True if an at-least-as-early visit of this state is memoized;
    /// records the visit otherwise.
    bool probe(timenet::TimePoint t, const timenet::UpdateSchedule& sched,
               const Pending& pending) {
      // chronus-analyzer: allow(hot-alloc)
      std::ostringstream os;
      for (const net::NodeId v : pending) os << v << ',';
      os << ';';
      // Updates older than the drain bound cannot influence any class that
      // is still in flight; only the recent update pattern (relative to t)
      // matters for the remaining subproblem.
      for (const auto& [v, tv] : sched.entries()) {
        if (tv >= t - drain) os << v << ':' << (t - tv) << ',';
      }
      const std::string key = os.str();
      const auto it = memo.find(key);
      if (it != memo.end() && it->second <= t) return true;
      memo[key] = t;
      return false;
    }
  };
};

struct ArenaTraits {
  using Pending = arena_search::SortedNodeVec;
  using CandVec = util::ArenaVector<net::NodeId>;

  // Pool slots are arena_new'd so their addresses survive pool growth
  // (see HeapTraits::CandPool).
  struct CandPool {
    util::Arena* arena;
    util::ArenaVector<CandVec*> pool;

    explicit CandPool(util::Arena* a)
        : arena(a), pool(util::ArenaAllocator<CandVec*>(a)) {}
    CandVec& at_depth(std::size_t d) {
      while (d >= pool.size()) {
        pool.push_back(arena_search::arena_new<CandVec>(
            arena, util::ArenaAllocator<net::NodeId>(arena)));
      }
      pool[d]->clear();
      return *pool[d];
    }
  };

  struct Memo {
    std::int64_t drain = 0;
    util::ArenaString key;  // reused scratch; contents rebuilt per probe
    std::map<util::ArenaString, timenet::TimePoint,
             std::less<util::ArenaString>,
             util::ArenaAllocator<
                 std::pair<const util::ArenaString, timenet::TimePoint>>>
        memo;

    explicit Memo(util::Arena* a)
        : key(util::ArenaAllocator<char>(a)),
          memo(std::less<util::ArenaString>(),
               util::ArenaAllocator<
                   std::pair<const util::ArenaString, timenet::TimePoint>>(
                   a)) {}

    bool probe(timenet::TimePoint t, const timenet::UpdateSchedule& sched,
               const Pending& pending) {
      key.clear();
      for (const net::NodeId v : pending) arena_search::append_u32(key, v);
      arena_search::append_u32(key, arena_search::kKeySeparator);
      for (const auto& [v, tv] : sched.entries()) {
        if (tv >= t - drain) {
          arena_search::append_u32(key, v);
          arena_search::append_u64(key, static_cast<std::uint64_t>(t - tv));
        }
      }
      const auto it = memo.find(key);
      if (it != memo.end()) {
        if (it->second <= t) return true;
        it->second = t;
        return false;
      }
      memo.emplace(key, t);
      return false;
    }
  };
};

template <typename Traits>
struct Search {
  const net::UpdateInstance* inst = nullptr;
  timenet::TransitionState* state = nullptr;
  util::Deadline deadline{0};
  int max_candidates = 16;

  std::int64_t incumbent = std::numeric_limits<std::int64_t>::max();
  timenet::UpdateSchedule best;
  bool found = false;
  bool timed_out = false;
  bool truncated = false;
  std::uint64_t nodes = 0;
  std::uint64_t prunes = 0;
  std::uint64_t memo_hits = 0;
  // Incumbent improvements found *inside* the search; the greedy seed is
  // excluded so mutp.nodes_visited >= mutp.incumbent_updates always holds
  // (property-tested in tests/property_test.cpp).
  std::uint64_t incumbent_updates = 0;
  typename Traits::Memo memo;
  typename Traits::CandPool cands;

  Search(typename Traits::Memo m, typename Traits::CandPool c)
      : memo(std::move(m)), cands(std::move(c)) {}

  void dfs(timenet::TimePoint t, std::size_t depth,
           typename Traits::Pending& pending);
  void branch(timenet::TimePoint t, std::size_t depth,
              typename Traits::Pending& pending,
              const typename Traits::CandVec& cand, std::size_t idx);
};

template <typename Traits>
void Search<Traits>::dfs(timenet::TimePoint t, std::size_t depth,
                         typename Traits::Pending& pending) {
  if (timed_out || deadline.expired()) {
    timed_out = true;
    return;
  }
  ++nodes;
  const timenet::UpdateSchedule& sched = state->schedule();
  if (pending.empty()) {
    const std::int64_t makespan =
        sched.empty() ? 0 : sched.last_time().count() + 1;
    if (makespan < incumbent) {
      incumbent = makespan;
      best = sched;
      found = true;
      ++incumbent_updates;
    }
    return;
  }
  // Any completion still updates a switch at >= t, so makespan >= t + 1.
  if (t.count() + 1 >= incumbent) {
    ++prunes;
    return;
  }

  if (memo.probe(t, sched, pending)) {
    ++memo_hits;
    return;
  }

  typename Traits::CandVec& cand = cands.at_depth(depth);
  for (const net::NodeId v : pending) {
    if (deadline.expired()) {  // candidate checks dominate at large n
      timed_out = true;
      return;
    }
    if (state->try_update(v, t)) {
      cand.push_back(v);
      state->undo();
    }
  }
  if (static_cast<int>(cand.size()) > max_candidates) {
    truncated = true;
    cand.resize(static_cast<std::size_t>(max_candidates));
  }
  branch(t, depth, pending, cand, 0);
}

template <typename Traits>
void Search<Traits>::branch(timenet::TimePoint t, std::size_t depth,
                            typename Traits::Pending& pending,
                            const typename Traits::CandVec& cand,
                            std::size_t idx) {
  if (timed_out || deadline.expired()) {
    timed_out = true;
    return;
  }
  if (idx == cand.size()) {
    // Waiting before the very first update only shifts the schedule; skip.
    if (state->schedule().empty()) return;
    dfs(t + 1, depth + 1, pending);
    return;
  }
  const net::NodeId v = cand[idx];
  // Include v (checked jointly with the already-included candidates) first:
  // maximizing per-step parallelism finds strong incumbents early.
  if (state->try_update(v, t)) {
    pending.erase(v);
    branch(t, depth, pending, cand, idx + 1);
    pending.insert(v);
    state->undo();
  }
  branch(t, depth, pending, cand, idx + 1);
}

/// What solve_mutp needs back from either instantiation.
struct SearchOutcome {
  std::int64_t incumbent = 0;
  timenet::UpdateSchedule best;
  bool found = false;
  bool timed_out = false;
  bool truncated = false;
  std::uint64_t nodes = 0;
  std::uint64_t prunes = 0;
  std::uint64_t memo_hits = 0;
  std::uint64_t incumbent_updates = 0;
};

struct SearchSeed {
  bool found = false;
  timenet::UpdateSchedule best;
  std::int64_t incumbent = 0;
  std::int64_t drain = 0;
};

template <typename Traits>
SearchOutcome finish(Search<Traits>& s) {
  SearchOutcome o;
  o.incumbent = s.incumbent;
  o.best = std::move(s.best);
  o.found = s.found;
  o.timed_out = s.timed_out;
  o.truncated = s.truncated;
  o.nodes = s.nodes;
  o.prunes = s.prunes;
  o.memo_hits = s.memo_hits;
  o.incumbent_updates = s.incumbent_updates;
  return o;
}

template <typename Traits>
void seed_search(Search<Traits>& s, const net::UpdateInstance& inst,
                 const MutpOptions& opts, const SearchSeed& seed) {
  s.inst = &inst;
  s.deadline = util::Deadline(opts.timeout_sec);
  s.max_candidates = opts.max_candidates_exact;
  s.memo.drain = seed.drain;
  s.found = seed.found;
  s.best = seed.best;
  s.incumbent = seed.incumbent;
}

SearchOutcome search_heap(const net::UpdateInstance& inst,
                          const MutpOptions& opts,
                          const std::vector<net::NodeId>& to_update,
                          const SearchSeed& seed) {
  Search<HeapTraits> s{HeapTraits::Memo{}, HeapTraits::CandPool{}};
  seed_search(s, inst, opts, seed);
  timenet::TransitionState state(inst);
  s.state = &state;
  // chronus-analyzer: allow(hot-alloc)
  std::set<net::NodeId> pending(to_update.begin(), to_update.end());
  if (s.deadline.expired()) {
    s.timed_out = true;  // the incumbent phase already consumed the budget
  } else {
    s.dfs(timenet::TimePoint{0}, 0, pending);
  }
  return finish(s);
}

SearchOutcome search_arena(const net::UpdateInstance& inst,
                           const MutpOptions& opts,
                           const std::vector<net::NodeId>& to_update,
                           const SearchSeed& seed) {
  util::Arena arena;
  util::ArenaScope claim(arena);
  Search<ArenaTraits> s{ArenaTraits::Memo(&arena),
                        ArenaTraits::CandPool(&arena)};
  seed_search(s, inst, opts, seed);
  timenet::TransitionState state(inst);
  s.state = &state;
  ArenaTraits::Pending pending(&arena);
  pending.assign_sorted(to_update.begin(), to_update.end());
  if (s.deadline.expired()) {
    s.timed_out = true;  // the incumbent phase already consumed the budget
  } else {
    s.dfs(timenet::TimePoint{0}, 0, pending);
  }
  SearchOutcome o = finish(s);
  const util::ArenaStats& st = arena.stats();
  obs::add("arena.mutp.bytes", st.bytes_requested);
  obs::add("arena.mutp.allocs", st.allocs);
  obs::add("arena.mutp.chunks", st.chunks);
  obs::add("arena.mutp.high_water", st.high_water);
  return o;
}

}  // namespace

MutpResult solve_mutp(const net::UpdateInstance& inst,
                      const MutpOptions& opts) {
  CHRONUS_SPAN("mutp.solve");
  MutpResult res;
  const auto to_update = inst.switches_to_update();
  if (to_update.empty()) {
    res.status = core::ScheduleStatus::kFeasible;
    res.proved_optimal = true;
    res.message = "nothing to update";
    return res;
  }

  const net::Graph& g = inst.graph();
  SearchSeed seed;
  seed.drain = static_cast<std::int64_t>(g.node_count() + 2) * g.max_delay();

  // Greedy incumbent: bounds the search and survives timeouts. The pure
  // (unguarded) greedy is tried first — it is the only variant that scales
  // to the Fig. 10 sizes — and its schedule is accepted after one exact
  // verification; the guarded greedy is the fallback on small instances.
  core::GreedyOptions fast;
  fast.record_steps = false;
  fast.guard_with_verifier = false;
  core::ScheduleResult greedy = core::greedy_schedule(inst, fast);
  // The incumbent's single validation pass gets a small floor so that a
  // micro-timeout (used to probe timeout behaviour) does not discard an
  // easily-verified incumbent on small instances.
  const double validate_budget =
      opts.timeout_sec > 0 ? std::max(opts.timeout_sec, 0.1) : 0.0;
  const bool fast_clean =
      greedy.feasible() && is_clean(inst, greedy.schedule, validate_budget);
  if (!fast_clean && to_update.size() <= 200) {
    core::GreedyOptions guarded;
    guarded.record_steps = false;
    greedy = core::greedy_schedule(inst, guarded);
  }
  if (greedy.feasible() &&
      (fast_clean || is_clean(inst, greedy.schedule, validate_budget))) {
    seed.found = true;
    seed.best = greedy.schedule;
    seed.incumbent =
        greedy.schedule.empty() ? 0 : greedy.schedule.last_time().count() + 1;
  } else {
    // Horizon cap: beyond this every in-flight class has drained twice over;
    // a schedule longer than it gains nothing.
    seed.incumbent =
        2 * seed.drain + static_cast<std::int64_t>(to_update.size()) + 2;
  }

  const SearchOutcome s = util::arena_enabled()
                              ? search_arena(inst, opts, to_update, seed)
                              : search_heap(inst, opts, to_update, seed);

  obs::add("mutp.calls");
  obs::add("mutp.nodes_visited", s.nodes);
  obs::add("mutp.prunes", s.prunes);
  obs::add("mutp.memo_hits", s.memo_hits);
  obs::add("mutp.incumbent_updates", s.incumbent_updates);
  if (s.timed_out) obs::add("mutp.timeouts");

  res.timed_out = s.timed_out;
  res.nodes_explored = s.nodes;
  if (s.found) {
    res.status = core::ScheduleStatus::kFeasible;
    res.schedule = s.best;
    res.makespan = s.best.empty() ? 0 : s.best.last_time().count() + 1;
    res.proved_optimal = !s.timed_out && !s.truncated;
    if (s.truncated) res.message = "branching truncated (candidate cap)";
    if (s.timed_out) res.message = "deadline hit; incumbent returned";
    return res;
  }

  res.message = s.timed_out ? "deadline hit; no feasible schedule found"
                            : "no congestion- and loop-free schedule exists";
  if (opts.force_complete) {
    core::GreedyOptions forced;
    forced.record_steps = false;
    forced.force_complete = true;
    const core::ScheduleResult be = core::greedy_schedule(inst, forced);
    res.schedule = be.schedule;
    res.makespan = be.schedule.empty() ? 0 : be.schedule.last_time().count() + 1;
    res.status = core::ScheduleStatus::kBestEffort;
  }
  return res;
}

}  // namespace chronus::opt
