#include "io/dot.hpp"

#include <set>
#include <sstream>

namespace chronus::io {

namespace {

std::string link_label(const net::Link& l) {
  std::ostringstream os;
  os << l.capacity << "/" << l.delay;
  return os.str();
}

}  // namespace

std::string to_dot(const net::Graph& g) {
  std::ostringstream os;
  os << "digraph network {\n  rankdir=LR;\n  node [shape=circle];\n";
  for (net::NodeId v = 0; v < g.node_count(); ++v) {
    os << "  \"" << g.name(v) << "\";\n";
  }
  for (net::LinkId id = 0; id < g.link_count(); ++id) {
    const net::Link& l = g.link(id);
    os << "  \"" << g.name(l.src) << "\" -> \"" << g.name(l.dst)
       << "\" [label=\"" << link_label(l) << "\"];\n";
  }
  os << "}\n";
  return os.str();
}

std::string to_dot(const net::UpdateInstance& inst,
                   const timenet::UpdateSchedule* schedule) {
  const net::Graph& g = inst.graph();
  std::set<net::LinkId> init_links;
  for (const net::LinkId id : net::path_links(g, inst.p_init())) {
    init_links.insert(id);
  }
  // The final configuration: new_next of every rule-bearing switch.
  std::set<net::LinkId> fin_links;
  for (const net::NodeId v : inst.touched_nodes()) {
    const auto nn = inst.new_next(v);
    if (!nn) continue;
    if (const auto id = g.find_link(v, *nn)) fin_links.insert(*id);
  }

  std::ostringstream os;
  os << "digraph update_instance {\n  rankdir=LR;\n  node [shape=circle];\n";
  for (const net::NodeId v : inst.touched_nodes()) {
    os << "  \"" << g.name(v) << "\" [label=\"" << g.name(v);
    if (schedule) {
      if (const auto t = schedule->at(v)) os << "\\n@t" << *t;
    }
    os << "\"";
    if (v == inst.source()) os << ", shape=doublecircle";
    if (v == inst.destination()) os << ", shape=doublecircle, peripheries=2";
    os << "];\n";
  }
  for (net::LinkId id = 0; id < g.link_count(); ++id) {
    const net::Link& l = g.link(id);
    os << "  \"" << g.name(l.src) << "\" -> \"" << g.name(l.dst)
       << "\" [label=\"" << link_label(l) << "\"";
    if (init_links.count(id)) os << ", style=solid, penwidth=2";
    if (fin_links.count(id)) {
      os << (init_links.count(id) ? ", color=\"black:black\"" : "")
         << ", style=dashed";
    }
    if (!init_links.count(id) && !fin_links.count(id)) {
      os << ", color=gray";
    }
    os << "];\n";
  }
  os << "}\n";
  return os.str();
}

std::string to_dot(const net::Graph& g, const core::DependencySet& deps) {
  std::ostringstream os;
  os << "digraph dependencies {\n  rankdir=LR;\n  node [shape=box];\n";
  for (std::size_t c = 0; c < deps.chains.size(); ++c) {
    const auto& chain = deps.chains[c];
    for (std::size_t i = 0; i < chain.size(); ++i) {
      os << "  \"" << g.name(chain[i]) << "\";\n";
      if (i + 1 < chain.size()) {
        os << "  \"" << g.name(chain[i]) << "\" -> \"" << g.name(chain[i + 1])
           << "\" [label=\"precedes\"];\n";
      }
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace chronus::io
