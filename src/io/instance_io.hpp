// Plain-text serialization of update instances and schedules, so the CLI
// (tools/chronus_cli) and downstream users can drive the library without
// writing C++.
//
// Instance format (one directive per line, '#' comments, names are free
// strings):
//
//   node v1                      # optional; links auto-create nodes
//   link v1 v2 cap=1 delay=1
//   demand 1.0
//   init v1 v2 v3 v4
//   fin  v1 v3 v4
//   redirect v2 v3               # final-config rule for an old-path switch
//
// Multi-flow files share the link/node directives and open one block per
// flow; each block's init/fin/redirect/demand lines belong to that flow:
//
//   flow f0
//   demand 1
//   init a b c
//   fin  a c
//   flow f1
//   init b c
//   fin  b a c
//
// Schedule format:
//
//   update v2 0
//   update v3 1
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "net/instance.hpp"
#include "timenet/schedule.hpp"

namespace chronus::io {

/// Parses a single-flow instance; throws std::runtime_error with a line
/// number on malformed input (including when the file declares several
/// flows — use read_flows for those).
net::UpdateInstance read_instance(std::istream& in);
net::UpdateInstance read_instance_file(const std::string& path);

/// Parses one or more flows over a shared graph. A file without `flow`
/// directives yields exactly one instance (the single-flow format). All
/// returned instances share one graph layout, as the multi-flow schedulers
/// require.
std::vector<net::UpdateInstance> read_flows(std::istream& in);
std::vector<net::UpdateInstance> read_flows_file(const std::string& path);

/// Writes the instance in the same format (round-trips with read_instance).
void write_instance(std::ostream& out, const net::UpdateInstance& inst);

/// Parses a schedule against an instance (names are resolved through it).
timenet::UpdateSchedule read_schedule(std::istream& in,
                                      const net::UpdateInstance& inst);

/// Writes "update <switch> <time>" lines, ascending by time then name.
void write_schedule(std::ostream& out, const net::UpdateInstance& inst,
                    const timenet::UpdateSchedule& sched);

}  // namespace chronus::io
