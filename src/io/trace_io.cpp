#include "io/trace_io.hpp"

#include <fstream>
#include <limits>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace chronus::io {

using net::Capacity;
using net::Delay;
using net::Demand;
using net::Graph;
using net::Link;
using net::LinkId;
using net::NodeId;
using net::Path;
using service::ServiceTrace;
using service::UpdateRequest;

namespace {

[[noreturn]] void fail(int line, const std::string& what) {
  throw std::runtime_error("line " + std::to_string(line) + ": " + what);
}

std::pair<std::string, std::string> split_kv(const std::string& token) {
  const auto eq = token.find('=');
  if (eq == std::string::npos) return {"", token};
  return {token.substr(0, eq), token.substr(eq + 1)};
}

}  // namespace

ServiceTrace read_trace(std::istream& in) {
  ServiceTrace trace;
  Graph& g = trace.graph;
  std::map<std::string, NodeId> by_name;
  const auto node_of = [&](const std::string& name) {
    const auto it = by_name.find(name);
    if (it != by_name.end()) return it->second;
    const NodeId id = g.add_node(name);
    by_name.emplace(name, id);
    return id;
  };

  std::set<std::uint64_t> seen_ids;
  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const auto hash = raw.find('#');
    if (hash != std::string::npos) raw.resize(hash);
    std::istringstream line(raw);
    std::string cmd;
    if (!(line >> cmd)) continue;

    if (cmd == "node") {
      std::string name;
      if (!(line >> name)) fail(line_no, "node needs a name");
      node_of(name);
    } else if (cmd == "link") {
      std::string from, to, token;
      if (!(line >> from >> to)) fail(line_no, "link needs two endpoints");
      double cap = 1.0;
      Delay delay = 1;
      while (line >> token) {
        const auto [key, value] = split_kv(token);
        try {
          if (key == "cap") {
            cap = std::stod(value);
          } else if (key == "delay") {
            delay = std::stoll(value);
          } else {
            fail(line_no, "unknown link attribute: " + token);
          }
        } catch (const std::invalid_argument&) {
          fail(line_no, "bad number in: " + token);
        }
      }
      const NodeId u = node_of(from);
      const NodeId v = node_of(to);
      try {
        g.add_link(u, v, Capacity{cap}, delay);
      } catch (const std::exception& e) {
        fail(line_no, e.what());
      }
    } else if (cmd == "request") {
      if (!g.link_count()) fail(line_no, "request before any link");
      UpdateRequest req;
      if (!(line >> req.id)) fail(line_no, "request needs an id");
      if (!seen_ids.insert(req.id).second) {
        fail(line_no, "duplicate request id " + std::to_string(req.id));
      }
      std::string token;
      bool saw_init = false;
      while (line >> token && token != "init") {
        const auto [key, value] = split_kv(token);
        try {
          if (key == "arrival") {
            req.arrival = std::stoll(value);
          } else if (key == "demand") {
            req.demand = Demand{std::stod(value)};
          } else if (key == "deadline") {
            req.deadline = std::stoll(value);
          } else if (key == "priority") {
            req.priority = std::stoi(value);
          } else if (key == "name") {
            req.name = value;
          } else {
            fail(line_no, "unknown request attribute: " + token);
          }
        } catch (const std::invalid_argument&) {
          fail(line_no, "bad number in: " + token);
        }
      }
      saw_init = token == "init";
      if (!saw_init) fail(line_no, "request needs an init path");
      std::vector<NodeId> nodes;
      while (line >> token && token != "fin") nodes.push_back(node_of(token));
      if (token != "fin") fail(line_no, "request needs a fin path");
      if (nodes.size() < 2) fail(line_no, "init needs at least two switches");
      req.p_init = Path(std::move(nodes));
      nodes.clear();
      while (line >> token) nodes.push_back(node_of(token));
      if (nodes.size() < 2) fail(line_no, "fin needs at least two switches");
      req.p_fin = Path(std::move(nodes));
      if (req.demand <= Demand{}) fail(line_no, "demand must be positive");
      if (req.arrival < 0) fail(line_no, "arrival must be >= 0");
      trace.requests.push_back(std::move(req));
    } else {
      fail(line_no, "unknown directive: " + cmd);
    }
  }
  return trace;
}

ServiceTrace read_trace_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  return read_trace(in);
}

void write_trace(std::ostream& out, const ServiceTrace& trace) {
  const Graph& g = trace.graph;
  // Full round-trip precision: a written trace must reload to the exact
  // same capacities and demands, or replayed runs diverge from the
  // generator's.
  out.precision(std::numeric_limits<double>::max_digits10);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    out << "node " << g.name(v) << "\n";
  }
  for (LinkId id = 0; id < g.link_count(); ++id) {
    const Link& l = g.link(id);
    out << "link " << g.name(l.src) << " " << g.name(l.dst) << " cap="
        << l.capacity << " delay=" << l.delay << "\n";
  }
  for (const UpdateRequest& r : trace.requests) {
    out << "request " << r.id << " arrival=" << r.arrival << " demand="
        << r.demand;
    if (r.deadline > 0) out << " deadline=" << r.deadline;
    if (r.priority != 0) out << " priority=" << r.priority;
    if (!r.name.empty()) out << " name=" << r.name;
    out << " init";
    for (const NodeId v : r.p_init) out << " " << g.name(v);
    out << " fin";
    for (const NodeId v : r.p_fin) out << " " << g.name(v);
    out << "\n";
  }
}

}  // namespace chronus::io
