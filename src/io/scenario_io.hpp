// Plain-text serialization of chaos campaign scripts (sim/chaos.hpp), so
// `chronus_soak` can run declarative failure scenarios without writing
// C++.
//
// A scenario file opens with a `scenario` header, an optional always-on
// `fault` floor, then one `phase` block per timed window; `flap` and
// `outage` lines attach to the most recent phase:
//
//   scenario storm seed=7
//   # always-on floor (all knobs optional)
//   fault drop=0.01 straggler=0.02 straggler_mult=10
//   # timed phases; times take an optional us/ms/s suffix (default us)
//   phase surge from=2s until=6s drop=0.05 reject=0.02 surge=2.5
//   flap sw=3 period=500ms down=100ms offset=50ms
//   outage sw=1 from=3s until=4s
//   phase skew-ramp from=6s until=10s skew_begin=0 skew_end=2ms
//
// Phase attributes: drop, duplicate, reorder, reject, straggler,
// straggler_mult, unresponsive, unresponsive_dur, skew_begin, skew_end,
// surge. Fault-floor attributes additionally: drift (clock-skew stddev).
// The parsed scenario is validated before it is returned, and
// write_scenario round-trips with read_scenario (times re-emitted in plain
// microseconds).
#pragma once

#include <iosfwd>
#include <string>

#include "sim/chaos.hpp"

namespace chronus::io {

/// Parses a scenario; throws std::runtime_error with a line number on
/// malformed input and util::ContractViolation when the assembled script
/// fails ChaosScenario::validate().
sim::ChaosScenario read_scenario(std::istream& in);
sim::ChaosScenario read_scenario_file(const std::string& path);

/// Writes the scenario in the same format (round-trips with
/// read_scenario).
void write_scenario(std::ostream& out, const sim::ChaosScenario& scenario);

}  // namespace chronus::io
