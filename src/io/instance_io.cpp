#include "io/instance_io.hpp"

#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace chronus::io {

using net::Capacity;
using net::Delay;
using net::Demand;
using net::Graph;
using net::Link;
using net::LinkId;
using net::NodeId;
using net::Path;
using net::UpdateInstance;

namespace {

[[noreturn]] void fail(int line, const std::string& what) {
  throw std::runtime_error("line " + std::to_string(line) + ": " + what);
}

/// "cap=1.5" -> ("cap", "1.5"); plain tokens map to ("", token).
std::pair<std::string, std::string> split_kv(const std::string& token) {
  const auto eq = token.find('=');
  if (eq == std::string::npos) return {"", token};
  return {token.substr(0, eq), token.substr(eq + 1)};
}

struct FlowBlock {
  std::string name;
  Demand demand{1.0};
  std::vector<NodeId> init_nodes;
  std::vector<NodeId> fin_nodes;
  std::vector<std::pair<NodeId, NodeId>> redirects;
};

}  // namespace

std::vector<UpdateInstance> read_flows(std::istream& in) {
  Graph g;
  std::map<std::string, NodeId> by_name;
  const auto node_of = [&](const std::string& name) {
    const auto it = by_name.find(name);
    if (it != by_name.end()) return it->second;
    const NodeId id = g.add_node(name);
    by_name.emplace(name, id);
    return id;
  };

  std::vector<FlowBlock> blocks;
  const auto current = [&]() -> FlowBlock& {
    if (blocks.empty()) {
      blocks.emplace_back();  // implicit unnamed flow (single-flow format)
    }
    return blocks.back();
  };

  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const auto hash = raw.find('#');
    if (hash != std::string::npos) raw.resize(hash);
    std::istringstream line(raw);
    std::string cmd;
    if (!(line >> cmd)) continue;

    if (cmd == "node") {
      std::string name;
      if (!(line >> name)) fail(line_no, "node needs a name");
      node_of(name);
    } else if (cmd == "link") {
      std::string from, to, token;
      if (!(line >> from >> to)) fail(line_no, "link needs two endpoints");
      double cap = 1.0;
      Delay delay = 1;
      while (line >> token) {
        const auto [key, value] = split_kv(token);
        try {
          if (key == "cap") {
            cap = std::stod(value);
          } else if (key == "delay") {
            delay = std::stoll(value);
          } else {
            fail(line_no, "unknown link attribute: " + token);
          }
        } catch (const std::invalid_argument&) {
          fail(line_no, "bad number in: " + token);
        }
      }
      // Sequence the lookups: argument evaluation order is unspecified,
      // and node ids should follow first appearance in the file.
      const NodeId u = node_of(from);
      const NodeId v = node_of(to);
      try {
        g.add_link(u, v, Capacity{cap}, delay);
      } catch (const std::exception& e) {
        fail(line_no, e.what());
      }
    } else if (cmd == "flow") {
      FlowBlock block;
      if (!(line >> block.name)) fail(line_no, "flow needs a name");
      std::string token;
      while (line >> token) {
        const auto [key, value] = split_kv(token);
        if (key != "demand") fail(line_no, "unknown flow attribute: " + token);
        try {
          block.demand = Demand{std::stod(value)};
        } catch (const std::invalid_argument&) {
          fail(line_no, "bad number in: " + token);
        }
      }
      // A leading implicit block that never received content is replaced.
      if (blocks.size() == 1 && blocks[0].name.empty() &&
          blocks[0].init_nodes.empty() && blocks[0].fin_nodes.empty()) {
        blocks.clear();
      }
      blocks.push_back(std::move(block));
    } else if (cmd == "demand") {
      double amount = 0.0;
      if (!(line >> amount)) fail(line_no, "demand needs a number");
      current().demand = Demand{amount};
    } else if (cmd == "init" || cmd == "fin") {
      std::vector<NodeId>& nodes =
          cmd == "init" ? current().init_nodes : current().fin_nodes;
      if (!nodes.empty()) fail(line_no, cmd + " given twice for this flow");
      std::string name;
      while (line >> name) nodes.push_back(node_of(name));
      if (nodes.size() < 2) fail(line_no, cmd + " needs at least two switches");
    } else if (cmd == "redirect") {
      std::string from, to;
      if (!(line >> from >> to)) fail(line_no, "redirect needs two switches");
      const NodeId u = node_of(from);
      const NodeId v = node_of(to);
      current().redirects.emplace_back(u, v);
    } else {
      fail(line_no, "unknown directive: " + cmd);
    }
  }

  if (blocks.empty()) {
    throw std::runtime_error("instance needs both init and fin paths");
  }
  std::vector<UpdateInstance> flows;
  flows.reserve(blocks.size());
  for (const FlowBlock& block : blocks) {
    const std::string label =
        block.name.empty() ? "the flow" : "flow " + block.name;
    if (block.init_nodes.empty() || block.fin_nodes.empty()) {
      throw std::runtime_error(label + " needs both init and fin paths");
    }
    UpdateInstance inst = UpdateInstance::from_paths(
        g, Path(block.init_nodes), Path(block.fin_nodes), block.demand);
    for (const auto& [from, to] : block.redirects) {
      inst.set_new_next(from, to);
    }
    flows.push_back(std::move(inst));
  }
  return flows;
}

std::vector<UpdateInstance> read_flows_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  return read_flows(in);
}

UpdateInstance read_instance(std::istream& in) {
  auto flows = read_flows(in);
  if (flows.size() != 1) {
    throw std::runtime_error("expected a single flow, found " +
                             std::to_string(flows.size()) +
                             " (use the multi-flow API)");
  }
  return std::move(flows.front());
}

UpdateInstance read_instance_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  return read_instance(in);
}

void write_instance(std::ostream& out, const UpdateInstance& inst) {
  const Graph& g = inst.graph();
  for (NodeId v = 0; v < g.node_count(); ++v) {
    out << "node " << g.name(v) << "\n";
  }
  for (LinkId id = 0; id < g.link_count(); ++id) {
    const Link& l = g.link(id);
    out << "link " << g.name(l.src) << " " << g.name(l.dst) << " cap="
        << l.capacity << " delay=" << l.delay << "\n";
  }
  out << "demand " << inst.demand() << "\n";
  out << "init";
  for (const NodeId v : inst.p_init()) out << " " << g.name(v);
  out << "\nfin ";
  for (const NodeId v : inst.p_fin()) out << " " << g.name(v);
  out << "\n";
  // Redirects: final-config rules that differ from both paths' defaults.
  for (const NodeId v : inst.p_init()) {
    if (inst.p_fin().contains(v)) continue;
    const auto nn = inst.new_next(v);
    const auto on = inst.old_next(v);
    if (nn && on && *nn != *on) {
      out << "redirect " << g.name(v) << " " << g.name(*nn) << "\n";
    }
  }
}

timenet::UpdateSchedule read_schedule(std::istream& in,
                                      const UpdateInstance& inst) {
  std::map<std::string, NodeId> by_name;
  for (NodeId v = 0; v < inst.graph().node_count(); ++v) {
    by_name.emplace(inst.graph().name(v), v);
  }
  timenet::UpdateSchedule sched;
  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const auto hash = raw.find('#');
    if (hash != std::string::npos) raw.resize(hash);
    std::istringstream line(raw);
    std::string cmd;
    if (!(line >> cmd)) continue;
    if (cmd != "update") fail(line_no, "expected 'update', got " + cmd);
    std::string name;
    std::int64_t t = 0;
    if (!(line >> name >> t)) fail(line_no, "update needs <switch> <time>");
    const auto it = by_name.find(name);
    if (it == by_name.end()) fail(line_no, "unknown switch: " + name);
    sched.set(it->second, timenet::TimePoint{t});
  }
  return sched;
}

void write_schedule(std::ostream& out, const UpdateInstance& inst,
                    const timenet::UpdateSchedule& sched) {
  for (const auto& [t, switches] : sched.by_time()) {
    for (const NodeId v : switches) {
      out << "update " << inst.graph().name(v) << " " << t << "\n";
    }
  }
}

}  // namespace chronus::io
