// Plain-text serialization of service request traces, so `chronus_cli
// serve` and the bench harnesses can replay recorded (or generated)
// workloads without writing C++.
//
// A trace file opens with the shared topology (same node/link directives
// as the instance format) followed by one `request` line per arrival:
//
//   # topology
//   node A                        # optional; links auto-create nodes
//   link A B cap=4 delay=1
//   link C D cap=4 delay=1
//   ...
//   # arrivals (times in microseconds, demand in capacity units); each
//   # request is a single line:
//   request 0 arrival=0 demand=1.0 deadline=60000000 priority=2
//       init s0 A B t0 fin s0 C D t0
//
// Attributes may appear in any order between the id and the `init`
// keyword; `deadline` (absolute, 0 = none), `priority` and `name` are
// optional. The `init` node list runs until the `fin` keyword, which runs
// to end of line. Round-trips with write_trace.
#pragma once

#include <iosfwd>
#include <string>

#include "service/service.hpp"

namespace chronus::io {

/// Parses a trace; throws std::runtime_error with a line number on
/// malformed input (unknown directives, duplicate ids, bad paths).
service::ServiceTrace read_trace(std::istream& in);
service::ServiceTrace read_trace_file(const std::string& path);

/// Writes the trace in the same format (round-trips with read_trace).
void write_trace(std::ostream& out, const service::ServiceTrace& trace);

}  // namespace chronus::io
