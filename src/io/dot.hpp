// Graphviz (DOT) exporters: render update instances in the paper's Fig. 1
// style (solid initial path, dashed final configuration), schedules as node
// annotations, and dependency relation sets (Fig. 5) as chains.
#pragma once

#include <string>

#include "core/dependency.hpp"
#include "net/instance.hpp"
#include "timenet/schedule.hpp"

namespace chronus::io {

/// The bare network: one edge per link, labelled "cap/delay".
std::string to_dot(const net::Graph& g);

/// Fig. 1 style: initial-path links solid bold, final-configuration links
/// dashed, everything else gray. With a schedule, nodes are annotated with
/// their update time ("v2\n@t0").
std::string to_dot(const net::UpdateInstance& inst,
                   const timenet::UpdateSchedule* schedule = nullptr);

/// Fig. 5 style: each dependency chain as a row of "must precede" arrows.
std::string to_dot(const net::Graph& g, const core::DependencySet& deps);

}  // namespace chronus::io
