#include "io/scenario_io.hpp"

#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>

namespace chronus::io {

using sim::ChaosPhase;
using sim::ChaosScenario;
using sim::FlapSpec;
using sim::OutageSpec;
using sim::SimTime;

namespace {

[[noreturn]] void fail(int line, const std::string& what) {
  throw std::runtime_error("line " + std::to_string(line) + ": " + what);
}

std::pair<std::string, std::string> split_kv(const std::string& token) {
  const auto eq = token.find('=');
  if (eq == std::string::npos) return {"", token};
  return {token.substr(0, eq), token.substr(eq + 1)};
}

/// Durations/instants: a number with an optional us/ms/s suffix
/// (microseconds when bare).
SimTime parse_time(const std::string& value) {
  std::size_t pos = 0;
  const double x = std::stod(value, &pos);
  const std::string suffix = value.substr(pos);
  double unit = 1.0;
  if (suffix.empty() || suffix == "us") {
    unit = 1.0;
  } else if (suffix == "ms") {
    unit = static_cast<double>(sim::kMillisecond);
  } else if (suffix == "s") {
    unit = static_cast<double>(sim::kSecond);
  } else {
    throw std::invalid_argument("bad time suffix: " + suffix);
  }
  return static_cast<SimTime>(std::llround(x * unit));
}

sim::SwitchId parse_switch(const std::string& value) {
  return static_cast<sim::SwitchId>(std::stoul(value));
}

}  // namespace

ChaosScenario read_scenario(std::istream& in) {
  ChaosScenario scenario;
  bool saw_header = false;
  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const auto hash = raw.find('#');
    if (hash != std::string::npos) raw.resize(hash);
    std::istringstream line(raw);
    std::string cmd;
    if (!(line >> cmd)) continue;

    if (cmd == "scenario") {
      if (saw_header) fail(line_no, "duplicate scenario header");
      saw_header = true;
      if (!(line >> scenario.name)) fail(line_no, "scenario needs a name");
      std::string token;
      while (line >> token) {
        const auto [key, value] = split_kv(token);
        try {
          if (key == "seed") {
            scenario.seed = std::stoull(value);
          } else {
            fail(line_no, "unknown scenario attribute: " + token);
          }
        } catch (const std::invalid_argument&) {
          fail(line_no, "bad number in: " + token);
        }
      }
      continue;
    }
    if (!saw_header) fail(line_no, "file must open with a scenario header");

    if (cmd == "fault") {
      std::string token;
      while (line >> token) {
        const auto [key, value] = split_kv(token);
        try {
          if (key == "drop") {
            scenario.base.drop_rate = std::stod(value);
          } else if (key == "duplicate") {
            scenario.base.duplicate_rate = std::stod(value);
          } else if (key == "reorder") {
            scenario.base.reorder_rate = std::stod(value);
          } else if (key == "reject") {
            scenario.base.reject_rate = std::stod(value);
          } else if (key == "straggler") {
            scenario.base.straggler_rate = std::stod(value);
          } else if (key == "straggler_mult") {
            scenario.base.straggler_multiplier = std::stod(value);
          } else if (key == "unresponsive") {
            scenario.base.unresponsive_rate = std::stod(value);
          } else if (key == "unresponsive_dur") {
            scenario.base.unresponsive_duration = parse_time(value);
          } else if (key == "drift") {
            scenario.base.clock_drift_stddev = parse_time(value);
          } else {
            fail(line_no, "unknown fault attribute: " + token);
          }
        } catch (const std::invalid_argument&) {
          fail(line_no, "bad number in: " + token);
        }
      }
    } else if (cmd == "phase") {
      ChaosPhase phase;
      if (!(line >> phase.name)) fail(line_no, "phase needs a name");
      bool saw_from = false, saw_until = false;
      std::string token;
      while (line >> token) {
        const auto [key, value] = split_kv(token);
        try {
          if (key == "from") {
            phase.from = parse_time(value);
            saw_from = true;
          } else if (key == "until") {
            phase.until = parse_time(value);
            saw_until = true;
          } else if (key == "drop") {
            phase.drop_rate = std::stod(value);
          } else if (key == "duplicate") {
            phase.duplicate_rate = std::stod(value);
          } else if (key == "reorder") {
            phase.reorder_rate = std::stod(value);
          } else if (key == "reject") {
            phase.reject_rate = std::stod(value);
          } else if (key == "straggler") {
            phase.straggler_rate = std::stod(value);
          } else if (key == "straggler_mult") {
            phase.straggler_multiplier = std::stod(value);
          } else if (key == "unresponsive") {
            phase.unresponsive_rate = std::stod(value);
          } else if (key == "unresponsive_dur") {
            phase.unresponsive_duration = parse_time(value);
          } else if (key == "skew_begin") {
            phase.skew_begin = parse_time(value);
          } else if (key == "skew_end") {
            phase.skew_end = parse_time(value);
          } else if (key == "surge") {
            phase.arrival_surge = std::stod(value);
          } else {
            fail(line_no, "unknown phase attribute: " + token);
          }
        } catch (const std::invalid_argument&) {
          fail(line_no, "bad number in: " + token);
        }
      }
      if (!saw_from || !saw_until) {
        fail(line_no, "phase needs from= and until=");
      }
      scenario.phases.push_back(std::move(phase));
    } else if (cmd == "flap") {
      if (scenario.phases.empty()) fail(line_no, "flap before any phase");
      FlapSpec flap;
      bool saw_sw = false, saw_period = false, saw_down = false;
      std::string token;
      while (line >> token) {
        const auto [key, value] = split_kv(token);
        try {
          if (key == "sw") {
            flap.sw = parse_switch(value);
            saw_sw = true;
          } else if (key == "period") {
            flap.period = parse_time(value);
            saw_period = true;
          } else if (key == "down") {
            flap.down = parse_time(value);
            saw_down = true;
          } else if (key == "offset") {
            flap.offset = parse_time(value);
          } else {
            fail(line_no, "unknown flap attribute: " + token);
          }
        } catch (const std::invalid_argument&) {
          fail(line_no, "bad number in: " + token);
        }
      }
      if (!saw_sw || !saw_period || !saw_down) {
        fail(line_no, "flap needs sw=, period= and down=");
      }
      scenario.phases.back().flaps.push_back(flap);
    } else if (cmd == "outage") {
      if (scenario.phases.empty()) fail(line_no, "outage before any phase");
      OutageSpec outage;
      bool saw_sw = false, saw_from = false, saw_until = false;
      std::string token;
      while (line >> token) {
        const auto [key, value] = split_kv(token);
        try {
          if (key == "sw") {
            outage.sw = parse_switch(value);
            saw_sw = true;
          } else if (key == "from") {
            outage.from = parse_time(value);
            saw_from = true;
          } else if (key == "until") {
            outage.until = parse_time(value);
            saw_until = true;
          } else {
            fail(line_no, "unknown outage attribute: " + token);
          }
        } catch (const std::invalid_argument&) {
          fail(line_no, "bad number in: " + token);
        }
      }
      if (!saw_sw || !saw_from || !saw_until) {
        fail(line_no, "outage needs sw=, from= and until=");
      }
      scenario.phases.back().outages.push_back(outage);
    } else {
      fail(line_no, "unknown directive: " + cmd);
    }
  }
  if (!saw_header) fail(line_no, "empty scenario file");
  scenario.validate();
  return scenario;
}

ChaosScenario read_scenario_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  return read_scenario(in);
}

void write_scenario(std::ostream& out, const ChaosScenario& scenario) {
  // Full round-trip precision: a written scenario must reload to the exact
  // same rates, or replayed campaigns diverge from the original.
  out.precision(std::numeric_limits<double>::max_digits10);
  out << "scenario " << scenario.name;
  if (scenario.seed != 0) out << " seed=" << scenario.seed;
  out << "\n";
  const sim::FaultModel& base = scenario.base;
  if (base.enabled()) {
    out << "fault";
    if (base.drop_rate > 0) out << " drop=" << base.drop_rate;
    if (base.duplicate_rate > 0) out << " duplicate=" << base.duplicate_rate;
    if (base.reorder_rate > 0) out << " reorder=" << base.reorder_rate;
    if (base.reject_rate > 0) out << " reject=" << base.reject_rate;
    if (base.straggler_rate > 0) {
      out << " straggler=" << base.straggler_rate
          << " straggler_mult=" << base.straggler_multiplier;
    }
    if (base.unresponsive_rate > 0) {
      out << " unresponsive=" << base.unresponsive_rate
          << " unresponsive_dur=" << base.unresponsive_duration;
    }
    if (base.clock_drift_stddev > 0) {
      out << " drift=" << base.clock_drift_stddev;
    }
    out << "\n";
  }
  for (const ChaosPhase& p : scenario.phases) {
    out << "phase " << p.name << " from=" << p.from << " until=" << p.until;
    if (p.drop_rate > 0) out << " drop=" << p.drop_rate;
    if (p.duplicate_rate > 0) out << " duplicate=" << p.duplicate_rate;
    if (p.reorder_rate > 0) out << " reorder=" << p.reorder_rate;
    if (p.reject_rate > 0) out << " reject=" << p.reject_rate;
    if (p.straggler_rate > 0) out << " straggler=" << p.straggler_rate;
    if (p.straggler_multiplier > 0) {
      out << " straggler_mult=" << p.straggler_multiplier;
    }
    if (p.unresponsive_rate > 0) {
      out << " unresponsive=" << p.unresponsive_rate;
    }
    if (p.unresponsive_duration > 0) {
      out << " unresponsive_dur=" << p.unresponsive_duration;
    }
    if (p.skew_begin > 0) out << " skew_begin=" << p.skew_begin;
    if (p.skew_end > 0) out << " skew_end=" << p.skew_end;
    if (p.arrival_surge != 1.0) out << " surge=" << p.arrival_surge;
    out << "\n";
    for (const FlapSpec& fl : p.flaps) {
      out << "flap sw=" << fl.sw << " period=" << fl.period
          << " down=" << fl.down;
      if (fl.offset > 0) out << " offset=" << fl.offset;
      out << "\n";
    }
    for (const OutageSpec& o : p.outages) {
      out << "outage sw=" << o.sw << " from=" << o.from
          << " until=" << o.until << "\n";
    }
  }
}

}  // namespace chronus::io
