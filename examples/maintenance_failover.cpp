// Network maintenance: drain a router without ever dropping or congesting
// the traffic riding it (the paper's motivation (3)). A line of eight
// switches carries a 500 Mbps aggregate; switch m4 must be taken down, so
// the flow is moved onto a bypass around it. The whole transition is
// executed through the simulated control plane with Time4 timed FlowMods,
// and per-second bandwidth samples (Floodlight-statistics style) show the
// traffic shifting without exceeding any link capacity.
//
//   ./examples/maintenance_failover
#include <cstdio>

#include "core/greedy_scheduler.hpp"
#include "net/generators.hpp"
#include "sim/traffic.hpp"
#include "sim/updaters.hpp"
#include "timenet/verifier.hpp"

using namespace chronus;

int main() {
  // m1 .. m8 in a line; bypass m3 -> m6 avoids the routers under
  // maintenance (m4, m5). All links 500 Mbps, the flow fills them.
  net::Graph g = net::line_topology(8, net::Capacity{1.0}, 1);
  const net::NodeId m3 = 2, m6 = 5;
  // The bypass haul takes as long as the drained segment: were it faster,
  // rerouted traffic would overtake the in-flight drain on the shared tail
  // and no congestion-free schedule could exist (the scheduler refuses
  // exactly that if you set the delay to 2).
  g.add_link(m3, m6, net::Capacity{1.0}, 3);
  const auto inst = net::UpdateInstance::from_paths(
      g, net::Path{0, 1, 2, 3, 4, 5, 6, 7}, net::Path{0, 1, 2, 5, 6, 7}, net::Demand{1.0});

  const core::ScheduleResult plan = core::greedy_schedule(inst);
  std::printf("Drain plan for m4/m5: %s\n",
              plan.feasible() ? "feasible" : plan.message.c_str());
  if (!plan.feasible()) return 1;
  for (const auto& [t, sw] : plan.schedule.by_time()) {
    std::printf("  t%lld:", static_cast<long long>(t.count()));
    for (const auto v : sw) std::printf(" %s", g.name(v).c_str());
    std::printf("\n");
  }
  const auto report = timenet::verify_transition(inst, plan.schedule);
  std::printf("Verified: %s\n\n", report.ok() ? "clean" : "VIOLATIONS");

  // Execute: one abstract unit = 250 ms; update starts at wall time 3 s.
  const sim::SimTime unit = 250 * sim::kMillisecond;
  sim::Network network(inst.graph(), unit, 500e6);
  sim::EventQueue eq;
  util::Rng rng(3);
  sim::Controller ctrl(eq, network, rng);
  sim::SimFlowSpec spec;
  spec.rate_bps = 500e6;
  sim::install_initial_rules(ctrl, inst, spec);
  const auto run = sim::run_chronus_update(
      ctrl, inst, spec, 3 * sim::kSecond + 5 * sim::kMillisecond, unit);
  ctrl.flush();

  sim::TrafficFlow flow;
  flow.name = spec.name;
  flow.header.dst = spec.dst_prefix + "1";
  flow.header.in_port = sim::kHostPort;
  flow.ingress = inst.source();
  flow.rate_bps = spec.rate_bps;
  sim::TraceOptions topts;
  topts.t_begin = 0;
  topts.t_end = 10 * sim::kSecond;
  topts.quantum = 25 * sim::kMillisecond;
  const auto traffic = sim::trace_traffic(network, {flow}, topts);

  std::printf("Data plane during the drain: %zu loops, %zu drops, "
              "%zu over-capacity intervals\n\n",
              traffic.loops.size(), traffic.drops.size(),
              traffic.congestion.size());

  const auto through = *network.link_between(3, 4);   // m4 -> m5 (drained)
  const auto bypass = *network.link_between(m3, m6);  // m3 -> m6 (filling)
  std::printf("per-second bandwidth (Mbps)   m4->m5   m3->m6(bypass)\n");
  const auto a = sim::bandwidth_series(network, through, 0, 10 * sim::kSecond,
                                       sim::kSecond);
  const auto b = sim::bandwidth_series(network, bypass, 0, 10 * sim::kSecond,
                                       sim::kSecond);
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::printf("  t=%2zus                      %6.1f   %6.1f\n", i,
                a[i] / 1e6, b[i] / 1e6);
  }
  std::printf("\nm4/m5 fully drained at %.2f s; safe to power down.\n",
              static_cast<double>(run.finish) / sim::kSecond);
  return 0;
}
