// Traffic engineering on a WAN: two aggregates swap their paths to
// rebalance link load (the SWAN/zUpdate-style scenario from the paper's
// introduction). Chronus schedules both transitions so that no link is ever
// overloaded; the order-replacement baseline, which ignores capacities,
// regularly congests the shared links while in-flight traffic drains.
//
//   ./examples/traffic_engineering [--seed=N]
#include <cstdio>

#include "baselines/order_replacement.hpp"
#include "core/multi_flow.hpp"
#include "net/generators.hpp"
#include "timenet/verifier.hpp"
#include "util/cli.hpp"

using namespace chronus;

namespace {

// PoP indices in net::wan_topology.
constexpr net::NodeId SEA = 0, SNV = 1, LAX = 2, SLC = 3, DEN = 4, KSC = 5,
                      HOU = 6, IND = 8, ATL = 9, NYC = 10;

std::vector<net::UpdateInstance> swap_scenario(double contested_capacity) {
  net::Graph g = net::wan_topology(net::Capacity{contested_capacity});
  std::vector<net::UpdateInstance> flows;
  // Aggregate A moves from the northern route onto the southern route.
  flows.push_back(net::UpdateInstance::from_paths(
      g, net::Path{SEA, DEN, KSC, IND, 7 /*CHI*/, NYC},
      net::Path{SEA, SNV, LAX, HOU, ATL, NYC}, net::Demand{1.0}));
  // Aggregate B moves the other way, onto A's old corridor.
  flows.push_back(net::UpdateInstance::from_paths(
      g, net::Path{SNV, LAX, HOU, ATL},
      net::Path{SNV, SLC, DEN, KSC, IND, ATL}, net::Demand{1.0}));
  return flows;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  util::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 7)));

  // With 2x headroom on the contested corridor both moves can overlap
  // safely; Chronus schedules them and re-verifies the combined plan.
  {
    const auto flows = swap_scenario(/*contested_capacity=*/2.0);
    const auto res = core::schedule_flows_sequentially(flows);
    std::printf("[headroom 2.0] multi-flow schedule: %s (span %lld steps)\n",
                res.feasible() ? "feasible, verified clean" : res.message.c_str(),
                static_cast<long long>(res.total_span));
    for (std::size_t k = 0; k < flows.size(); ++k) {
      std::printf("  flow %zu: %s  =>  %s\n", k,
                  net::to_string(flows[k].graph(), flows[k].p_init()).c_str(),
                  net::to_string(flows[k].graph(), flows[k].p_fin()).c_str());
      for (const auto& [v, t] : res.schedules[k].entries()) {
        std::printf("    %s @ t%lld\n", flows[k].graph().name(v).c_str(),
                    static_cast<long long>(t.count()));
      }
    }
  }

  // With tight links (1.5 units for two 1.0-unit aggregates) a sequential
  // plan cannot exist: the scheduler reports it instead of congesting.
  {
    const auto flows = swap_scenario(/*contested_capacity=*/1.5);
    const auto res = core::schedule_flows_sequentially(flows);
    std::printf("\n[headroom 1.5] multi-flow schedule: %s\n",
                res.feasible() ? "feasible" : "infeasible — correctly refused");
    if (!res.feasible()) std::printf("  reason: %s\n", res.message.c_str());
  }

  // Chronus vs OR on reroutes whose old and new paths interleave (the
  // §V.B workload: fixed initial path, random final routing, tight links).
  {
    net::RandomInstanceOptions ropt;
    ropt.n = 12;
    int chronus_congested = 0;
    int or_congested_runs = 0;
    std::size_t or_congested_links = 0;
    constexpr int kInstances = 10;
    constexpr int kRealizations = 5;
    for (int i = 0; i < kInstances; ++i) {
      const auto inst = net::random_instance(ropt, rng);
      core::GreedyOptions gopts;
      gopts.force_complete = true;
      const auto chronus = core::greedy_schedule(inst, gopts);
      chronus_congested +=
          !timenet::verify_transition(inst, chronus.schedule).ok();
      for (int r = 0; r < kRealizations; ++r) {
        const auto exec =
            baselines::plan_and_execute_order_replacement(inst, rng);
        const auto rep = timenet::verify_transition(inst, exec.realized);
        or_congested_runs += !rep.ok();
        or_congested_links += rep.congested_link_count();
      }
    }
    std::printf("\n[random reroutes, n=12] transitions with violations:\n");
    std::printf("  Chronus: %d / %d instances\n", chronus_congested,
                kInstances);
    std::printf("  OR:      %d / %d realizations "
                "(%.1f congested time-extended links each)\n",
                or_congested_runs, kInstances * kRealizations,
                static_cast<double>(or_congested_links) /
                    (kInstances * kRealizations));
  }
  return 0;
}
