// The paper's motivating example (Figs. 1, 2 and 5), reproduced end to end:
//
//  (a) updating every switch at once creates transient forwarding loops
//      (Fig. 2a);
//  (b) the plausible plan {v1,v2}@t0, {v3,v4,v5}@t1 creates transient
//      congestion where the new flow meets in-flight old traffic (Fig. 2b);
//  (c) Chronus' greedy scheduler derives the dependency relation sets of
//      Fig. 5 step by step and emits the safe timed sequence
//      v2@t0, v3@t1, {v1,v4}@t2, v5@t3.
//
//   ./examples/motivating_example
#include <cstdio>

#include "core/greedy_scheduler.hpp"
#include "net/generators.hpp"
#include "timenet/verifier.hpp"

using namespace chronus;

namespace {

void show(const char* title, const net::UpdateInstance& inst,
          const timenet::UpdateSchedule& sched) {
  const auto report = timenet::verify_transition(inst, sched);
  std::printf("%s\n%s\n", title, report.to_string(inst.graph()).c_str());
}

}  // namespace

int main() {
  const net::UpdateInstance inst = net::fig1_instance();
  const net::Graph& g = inst.graph();
  std::printf("Topology: %zu switches, unit capacities and delays\n",
              g.node_count());
  std::printf("  solid  (old): %s\n", net::to_string(g, inst.p_init()).c_str());
  std::printf("  dashed (new): %s (plus the redirect v5 -> v2)\n\n",
              net::to_string(g, inst.p_fin()).c_str());

  // (a) All at once: three in-flight classes revisit switches (Fig. 2a).
  timenet::UpdateSchedule all_at_once;
  for (const auto v : inst.switches_to_update()) all_at_once.set(v, timenet::TimePoint{0});
  show("(a) update everything at t0 (Fig. 2a):", inst, all_at_once);

  // A concrete looping trajectory: the class injected two units before t0.
  const auto trace = timenet::trace_class(inst, all_at_once, timenet::TimePoint{-2});
  std::printf("    e.g. %s\n\n", timenet::to_string(g, trace).c_str());

  // (b) {v1,v2}@t0 then the rest at t1: congestion (Fig. 2b).
  timenet::UpdateSchedule plausible;
  plausible.set(0, timenet::TimePoint{0});  // v1
  plausible.set(1, timenet::TimePoint{0});  // v2
  plausible.set(2, timenet::TimePoint{1});  // v3
  plausible.set(3, timenet::TimePoint{1});  // v4
  plausible.set(4, timenet::TimePoint{1});  // v5
  show("(b) {v1,v2}@t0, {v3,v4,v5}@t1 (Fig. 2b):", inst, plausible);

  // (c) Chronus: dependency sets per step (Fig. 5) and the safe sequence.
  std::printf("(c) Chronus (Algorithm 2):\n");
  const core::ScheduleResult plan = core::greedy_schedule(inst);
  for (const auto& step : plan.steps) {
    std::printf("  t%lld: dependency set %s\n",
                static_cast<long long>(step.time.count()),
                step.dependencies.to_string(g).c_str());
    std::printf("        update:");
    if (step.updated.empty()) std::printf(" (wait)");
    for (const auto v : step.updated) std::printf(" %s", g.name(v).c_str());
    std::printf("\n");
  }
  show("\n  resulting timed sequence:", inst, plan.schedule);

  // The time-extended loads of the safe sequence: never above capacity.
  std::printf("  time-extended link loads during the transition:\n");
  for (const auto& [key, load] : timenet::link_loads(inst, plan.schedule)) {
    const auto& [link_id, enter] = key;
    if (enter < timenet::TimePoint{0} ||
        enter > plan.schedule.last_time() + 2) {
      continue;
    }
    const net::Link& l = g.link(link_id);
    std::printf("    %s(t%lld) -> %s(t%lld): %.0f / %.0f\n",
                g.name(l.src).c_str(), static_cast<long long>(enter.count()),
                g.name(l.dst).c_str(),
                static_cast<long long>((enter + l.delay).count()), load.value(),
                l.capacity.value());
  }
  return 0;
}
