// Quickstart: schedule a consistent timed update with Chronus.
//
// Builds the paper's Fig. 1 network, asks the greedy scheduler (Algorithm 2)
// for a congestion- and loop-free timed update sequence, verifies it in the
// time-extended network and executes it through the simulated control
// plane, printing the Table II-style flow tables before and after.
//
//   ./examples/quickstart
#include <cstdio>

#include "core/greedy_scheduler.hpp"
#include "net/generators.hpp"
#include "sim/updaters.hpp"
#include "timenet/verifier.hpp"

using namespace chronus;

namespace {

void print_flow_table(const sim::Network& net, sim::SwitchId id) {
  std::printf("  flow table at %s:\n", net.sw(id).name().c_str());
  for (const auto& e : net.sw(id).table().entries()) {
    std::printf("    %s\n", e.to_string().c_str());
  }
}

}  // namespace

int main() {
  // 1. The update instance: old path (solid), new path (dashed), demand.
  const net::UpdateInstance inst = net::fig1_instance();
  std::printf("Initial path: %s\n",
              net::to_string(inst.graph(), inst.p_init()).c_str());
  std::printf("Final path:   %s\n\n",
              net::to_string(inst.graph(), inst.p_fin()).c_str());

  // 2. Plan: Algorithm 2 assigns each switch an exact update time point.
  const core::ScheduleResult plan = core::greedy_schedule(inst);
  if (!plan.feasible()) {
    std::printf("no safe schedule: %s\n", plan.message.c_str());
    return 1;
  }
  std::printf("Timed update schedule (abstract time units):\n");
  for (const auto& [t, switches] : plan.schedule.by_time()) {
    std::printf("  t%lld:", static_cast<long long>(t.count()));
    for (const auto v : switches) std::printf(" %s", inst.graph().name(v).c_str());
    std::printf("\n");
  }

  // 3. Verify: replay the transition in the time-extended network.
  const auto report = timenet::verify_transition(inst, plan.schedule);
  std::printf("\nVerification: %s\n",
              report.ok() ? "congestion- and loop-free at every moment"
                          : report.to_string(inst.graph()).c_str());

  // 4. Execute through the simulated control plane with Time4-style timed
  //    FlowMods (one abstract unit = 200 ms of wall time here).
  const sim::SimTime unit = 200 * sim::kMillisecond;
  sim::Network network(inst.graph(), unit, 500e6);  // 1.0 => 500 Mbps
  sim::EventQueue eq;
  util::Rng rng(1);
  sim::Controller ctrl(eq, network, rng);
  sim::SimFlowSpec spec;
  spec.rate_bps = 500e6;
  sim::install_initial_rules(ctrl, inst, spec);
  ctrl.flush();

  std::printf("\nBefore the update:\n");
  print_flow_table(network, inst.source());
  print_flow_table(network, inst.destination());

  const auto run = sim::run_chronus_update(
      ctrl, inst, spec, 2 * sim::kSecond + 10 * sim::kMillisecond, unit);
  ctrl.flush();
  std::printf("\nUpdate executed: first rule at %.3f s, done at %.3f s\n",
              static_cast<double>(run.applied.begin()->second) / sim::kSecond,
              static_cast<double>(run.finish) / sim::kSecond);

  std::printf("\nAfter the update:\n");
  print_flow_table(network, inst.source());
  print_flow_table(network, inst.destination());
  return 0;
}
