// The time-extended network made visible (the paper's Fig. 2): for a given
// schedule on the Fig. 1 example, renders which time-extended links carry
// flow at every step, marks over-capacity entries, and emits Graphviz DOT
// for the instance and its Fig. 5 dependency sets.
//
//   ./examples/time_extended_view [--all-at-once]
#include <cstdio>
#include <map>

#include "core/dependency.hpp"
#include "core/greedy_scheduler.hpp"
#include "io/dot.hpp"
#include "net/generators.hpp"
#include "timenet/verifier.hpp"
#include "util/cli.hpp"

using namespace chronus;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const bool all_at_once = cli.get_bool("all-at-once", false);

  const auto inst = net::fig1_instance();
  const net::Graph& g = inst.graph();

  timenet::UpdateSchedule schedule;
  if (all_at_once) {
    for (const auto v : inst.switches_to_update()) schedule.set(v, timenet::TimePoint{0});
    std::printf("Schedule: everything at t0 (the unsafe Fig. 2(a) plan)\n\n");
  } else {
    const auto plan = core::greedy_schedule(inst);
    schedule = plan.schedule;
    std::printf("Schedule: Chronus (v2@t0, v3@t1, {v1,v4}@t2, v5@t3)\n\n");
  }

  // Occupancy grid: rows = links, columns = entry time steps.
  const auto loads = timenet::link_loads(inst, schedule);
  constexpr timenet::TimePoint kFrom{-4};
  constexpr timenet::TimePoint kTo{8};
  std::printf("time-extended link loads (entry steps t%lld..t%lld; '#'=in "
              "use, '!'=over capacity, '.'=idle):\n\n",
              static_cast<long long>(kFrom.count()), static_cast<long long>(kTo.count()));
  std::printf("%-10s", "link");
  for (timenet::TimePoint t = kFrom; t <= kTo; ++t) {
    std::printf("%4lld", static_cast<long long>(t.count()));
  }
  std::printf("\n");
  for (net::LinkId id = 0; id < g.link_count(); ++id) {
    const net::Link& l = g.link(id);
    std::printf("%-10s", (g.name(l.src) + ">" + g.name(l.dst)).c_str());
    for (timenet::TimePoint t = kFrom; t <= kTo; ++t) {
      const auto it = loads.find({id, t});
      const net::Demand x = it == loads.end() ? net::Demand{} : it->second;
      std::printf("%4s", x <= net::Demand{} ? "."
                         : x > l.capacity ? "!"
                                          : "#");
    }
    std::printf("\n");
  }

  const auto report = timenet::verify_transition(inst, schedule);
  std::printf("\n%s\n", report.to_string(g).c_str());

  // The Fig. 5 dependency sets at t0 and the Fig. 1 instance, as DOT.
  std::set<net::NodeId> pending;
  for (const auto v : inst.switches_to_update()) pending.insert(v);
  const auto deps = core::find_dependencies(inst, {}, pending);
  std::printf("dependency set at t0: %s\n\n", deps.to_string(g).c_str());
  std::printf("---- instance DOT (render with `dot -Tpng`) ----\n%s",
              io::to_dot(inst, &schedule).c_str());
  std::printf("---- dependency DOT ----\n%s", io::to_dot(g, deps).c_str());
  return 0;
}
