// Tests for the instance/schedule text formats and the DOT exporters.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "core/dependency.hpp"
#include "core/greedy_scheduler.hpp"
#include "io/dot.hpp"
#include "core/multi_flow.hpp"
#include "io/instance_io.hpp"
#include "net/generators.hpp"

namespace chronus::io {
namespace {

TEST(InstanceIo, ParsesAMinimalInstance) {
  std::istringstream in(R"(# a three-switch reroute
link a b cap=1 delay=1
link b c cap=1 delay=2
link a c cap=2 delay=3
demand 1.5
init a b c
fin a c
)");
  const auto inst = read_instance(in);
  EXPECT_EQ(inst.graph().node_count(), 3u);
  EXPECT_EQ(inst.graph().link_count(), 3u);
  EXPECT_DOUBLE_EQ(inst.demand().value(), 1.5);
  EXPECT_EQ(inst.p_init().size(), 3u);
  EXPECT_EQ(inst.p_fin().size(), 2u);
  EXPECT_EQ(inst.graph().delay(0, 2), 3);
}

TEST(InstanceIo, ParsesRedirects) {
  std::istringstream in(R"(
link a b cap=1 delay=1
link b c cap=1 delay=1
link a c cap=1 delay=1
link b a cap=1 delay=1
init a b c
fin a c
redirect b a
)");
  const auto inst = read_instance(in);
  EXPECT_EQ(inst.new_next(1), std::optional<net::NodeId>(0));
  EXPECT_TRUE(inst.needs_update(1));
}

TEST(InstanceIo, RoundTripsFig1) {
  const auto inst = net::fig1_instance();
  std::ostringstream out;
  write_instance(out, inst);
  std::istringstream in(out.str());
  const auto again = read_instance(in);
  EXPECT_EQ(again.graph().node_count(), inst.graph().node_count());
  EXPECT_EQ(again.graph().link_count(), inst.graph().link_count());
  EXPECT_EQ(again.p_init().size(), inst.p_init().size());
  EXPECT_EQ(again.p_fin().size(), inst.p_fin().size());
  // The v5 -> v2 redirect survives the round trip.
  EXPECT_EQ(again.new_next(4), std::optional<net::NodeId>(1));
  // And the round-tripped instance schedules identically.
  EXPECT_EQ(core::greedy_schedule(again).schedule,
            core::greedy_schedule(inst).schedule);
}

TEST(InstanceIo, ErrorsCarryLineNumbers) {
  const auto expect_error = [](const char* text, const char* needle) {
    std::istringstream in(text);
    try {
      read_instance(in);
      FAIL() << "expected an error for: " << text;
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
    }
  };
  expect_error("frobnicate a b\n", "unknown directive");
  expect_error("link a\n", "two endpoints");
  expect_error("link a b cap=x\n", "bad number");
  expect_error("link a b speed=1\n", "unknown link attribute");
  expect_error("link a b\ninit a\n", "at least two");
  expect_error("link a b\ninit a b\ninit a b\n", "given twice");
}

TEST(InstanceIo, MissingPathsRejected) {
  std::istringstream in("link a b cap=1 delay=1\n");
  EXPECT_THROW(read_instance(in), std::runtime_error);
}

TEST(ScheduleIo, RoundTrips) {
  const auto inst = net::fig1_instance();
  const auto plan = core::greedy_schedule(inst);
  std::ostringstream out;
  write_schedule(out, inst, plan.schedule);
  std::istringstream in(out.str());
  const auto again = read_schedule(in, inst);
  EXPECT_EQ(again, plan.schedule);
}

TEST(ScheduleIo, UnknownSwitchRejected) {
  const auto inst = net::fig1_instance();
  std::istringstream in("update nosuch 3\n");
  EXPECT_THROW(read_schedule(in, inst), std::runtime_error);
}

TEST(Dot, GraphExportContainsLinks) {
  const auto g = net::line_topology(3, net::Capacity{2.0}, 1);
  const std::string dot = to_dot(g);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("\"v1\" -> \"v2\""), std::string::npos);
  EXPECT_NE(dot.find("2/1"), std::string::npos);
}

TEST(Dot, InstanceExportStylesPaths) {
  const auto inst = net::fig1_instance();
  const std::string dot = to_dot(inst);
  // Old-path links solid bold, final-configuration links dashed.
  EXPECT_NE(dot.find("penwidth=2"), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
  // The redirect v5 -> v2 is part of the final configuration.
  EXPECT_NE(dot.find("\"v5\" -> \"v2\""), std::string::npos);
}

TEST(Dot, ScheduleAnnotatesNodes) {
  const auto inst = net::fig1_instance();
  const auto plan = core::greedy_schedule(inst);
  const std::string dot = to_dot(inst, &plan.schedule);
  EXPECT_NE(dot.find("v2\\n@t0"), std::string::npos);
  EXPECT_NE(dot.find("v5\\n@t3"), std::string::npos);
}

TEST(Dot, DependencyChainsRender) {
  const auto inst = net::fig1_instance();
  std::set<net::NodeId> pending{0, 1, 2, 3, 4};
  const auto deps = core::find_dependencies(inst, {}, pending);
  const std::string dot = to_dot(inst.graph(), deps);
  EXPECT_NE(dot.find("precedes"), std::string::npos);
  EXPECT_NE(dot.find("\"v3\" -> \"v1\""), std::string::npos);
}

TEST(InstanceIo, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "chronus_fig1.inst";
  {
    std::ofstream out(path);
    write_instance(out, net::fig1_instance());
  }
  const auto inst = read_instance_file(path);
  EXPECT_EQ(inst.graph().node_count(), 6u);
  const auto flows = read_flows_file(path);
  EXPECT_EQ(flows.size(), 1u);
  std::remove(path.c_str());
}

TEST(InstanceIo, MissingFileThrows) {
  EXPECT_THROW(read_instance_file("/no/such/chronus.inst"),
               std::runtime_error);
  EXPECT_THROW(read_flows_file("/no/such/chronus.inst"), std::runtime_error);
}

TEST(FlowsIo, ParsesMultipleFlowsOverOneGraph) {
  std::istringstream in(R"(
link s0 m cap=2 delay=1
link s1 m cap=2 delay=1
link m t cap=2 delay=1
link s0 b cap=2 delay=1
link b t cap=2 delay=1
flow f0 demand=1
init s0 m t
fin s0 b t
flow f1 demand=0.5
init s1 m t
fin s1 m t
)");
  const auto flows = read_flows(in);
  ASSERT_EQ(flows.size(), 2u);
  EXPECT_DOUBLE_EQ(flows[0].demand().value(), 1.0);
  EXPECT_DOUBLE_EQ(flows[1].demand().value(), 0.5);
  EXPECT_EQ(flows[0].graph().link_count(), flows[1].graph().link_count());
  // The parsed flows drive the multi-flow schedulers directly.
  const auto res = core::schedule_flows_jointly(flows);
  EXPECT_TRUE(res.feasible()) << res.message;
}

TEST(FlowsIo, SingleFlowFilesYieldOneInstance) {
  std::istringstream in(R"(
link a b cap=1 delay=1
link a c cap=1 delay=1
link c b cap=1 delay=1
init a b
fin a c b
)");
  const auto flows = read_flows(in);
  ASSERT_EQ(flows.size(), 1u);
}

TEST(FlowsIo, ReadInstanceRejectsMultiFlowFiles) {
  std::istringstream in(R"(
link a b cap=1 delay=1
flow f0
init a b
fin a b
flow f1
init a b
fin a b
)");
  EXPECT_THROW(read_instance(in), std::runtime_error);
}

TEST(FlowsIo, FlowMissingPathsRejected) {
  std::istringstream in(R"(
link a b cap=1 delay=1
flow f0
init a b
)");
  try {
    read_flows(in);
    FAIL();
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("flow f0"), std::string::npos);
  }
}

TEST(FlowsIo, ParserSurvivesGarbage) {
  // Fuzz-ish: random byte soup must throw cleanly, never crash.
  util::Rng rng(77);
  for (int i = 0; i < 200; ++i) {
    std::string soup;
    const int len = static_cast<int>(rng.uniform_int(0, 120));
    for (int c = 0; c < len; ++c) {
      const char alphabet[] = "abc =.#\n0123456789linkfowdemandinitredirect";
      soup += alphabet[rng.index(sizeof(alphabet) - 1)];
    }
    std::istringstream in(soup);
    try {
      read_flows(in);  // may succeed on degenerate-but-valid soup
    } catch (const std::exception&) {
      // fine: rejected with a typed error
    }
  }
}

}  // namespace
}  // namespace chronus::io
