// Tests for the heuristic schedulers: verified cleanliness, agreement on
// the paper's example, and the improvement properties they promise.
#include <gtest/gtest.h>

#include "core/heuristics.hpp"
#include "net/generators.hpp"
#include "timenet/verifier.hpp"

namespace chronus::core {
namespace {

TEST(ChainPriority, SolvesFig1Cleanly) {
  const auto inst = net::fig1_instance();
  const ScheduleResult res = chain_priority_schedule(inst);
  ASSERT_TRUE(res.feasible()) << res.message;
  EXPECT_EQ(res.schedule.step_span(), 4);
  EXPECT_TRUE(timenet::verify_transition(inst, res.schedule).ok());
}

TEST(ChainPriority, AlwaysCleanOnRandomInstances) {
  util::Rng rng(31);
  net::RandomInstanceOptions opt;
  opt.n = 14;
  for (int i = 0; i < 25; ++i) {
    const auto inst = net::random_instance(opt, rng);
    const ScheduleResult res = chain_priority_schedule(inst);
    if (res.feasible()) {
      EXPECT_TRUE(timenet::verify_transition(inst, res.schedule).ok());
    }
  }
}

TEST(ChainPriority, NothingToUpdate) {
  net::Graph g = net::line_topology(3, net::Capacity{1.0}, 1);
  const auto inst = net::UpdateInstance::from_paths(g, net::Path{0, 1, 2},
                                                    net::Path{0, 1, 2}, net::Demand{1.0});
  EXPECT_TRUE(chain_priority_schedule(inst).feasible());
}

TEST(RandomizedRestart, CleanAndNeverWorseThanItsOwnRuns) {
  util::Rng rng(32);
  net::RandomInstanceOptions opt;
  opt.n = 12;
  for (int i = 0; i < 10; ++i) {
    const auto inst = net::random_instance(opt, rng);
    util::Rng seeds(100 + i);
    RestartOptions ro;
    ro.restarts = 8;
    const ScheduleResult best = randomized_restart_schedule(inst, seeds, ro);
    if (!best.feasible()) continue;
    EXPECT_TRUE(timenet::verify_transition(inst, best.schedule).ok());
  }
}

TEST(RandomizedRestart, FindsFeasibleAtLeastAsOftenAsGreedy) {
  util::Rng rng(33);
  net::RandomInstanceOptions opt;
  opt.n = 12;
  int greedy_ok = 0;
  int restart_ok = 0;
  for (int i = 0; i < 20; ++i) {
    const auto inst = net::random_instance(opt, rng);
    GreedyOptions gopts;
    gopts.record_steps = false;
    const bool g = greedy_schedule(inst, gopts).feasible();
    util::Rng seeds(200 + i);
    const bool r = randomized_restart_schedule(inst, seeds).feasible();
    greedy_ok += g;
    restart_ok += r;
    // Restarts include many orders; a deterministic success should very
    // rarely be missed by 16 random ones, and never on these seeds.
    if (g) {
      EXPECT_TRUE(r) << "instance " << i;
    }
  }
  EXPECT_GE(restart_ok, greedy_ok);
}

TEST(RandomizedRestart, MakespanNeverWorseThanGreedyOnAverage) {
  util::Rng rng(34);
  net::RandomInstanceOptions opt;
  opt.n = 12;
  double greedy_total = 0;
  double restart_total = 0;
  int both = 0;
  for (int i = 0; i < 15; ++i) {
    const auto inst = net::random_instance(opt, rng);
    GreedyOptions gopts;
    gopts.record_steps = false;
    const auto g = greedy_schedule(inst, gopts);
    util::Rng seeds(300 + i);
    const auto r = randomized_restart_schedule(inst, seeds);
    if (!g.feasible() || !r.feasible()) continue;
    ++both;
    greedy_total += static_cast<double>(g.schedule.step_span());
    restart_total += static_cast<double>(r.schedule.step_span());
  }
  ASSERT_GT(both, 5);
  EXPECT_LE(restart_total, greedy_total);
}

TEST(RandomizedRestart, InfeasibleInstanceStaysInfeasible) {
  net::Graph g;
  g.add_nodes(4);
  g.add_link(0, 1, net::Capacity{1.0}, 2);
  g.add_link(1, 2, net::Capacity{1.0}, 2);
  g.add_link(2, 3, net::Capacity{1.0}, 2);
  g.add_link(0, 2, net::Capacity{1.0}, 1);
  const auto inst = net::UpdateInstance::from_paths(
      g, net::Path{0, 1, 2, 3}, net::Path{0, 2, 3}, net::Demand{1.0});
  util::Rng rng(35);
  EXPECT_FALSE(randomized_restart_schedule(inst, rng).feasible());
}

TEST(Tighten, ImprovesEvenTheFig1Schedule) {
  // The paper's dependency relation (v3 -> v1) holds v1 back until t2, but
  // the exact semantics allow v1 at t1 (its redirected flow only touches
  // links the drain has already left). Tightening finds that; v5 cannot
  // move before t3 (earlier slots loop), so the 4-step span stands — which
  // also matches OPT's proved optimum for this instance.
  const auto inst = net::fig1_instance();
  const auto plan = greedy_schedule(inst);
  const auto tight = tighten_schedule(inst, plan.schedule);
  EXPECT_TRUE(timenet::verify_transition(inst, tight).ok());
  EXPECT_EQ(tight.at(0), std::optional<timenet::TimePoint>(1));  // v1 earlier
  EXPECT_EQ(tight.at(4), std::optional<timenet::TimePoint>(3));  // v5 pinned
  EXPECT_EQ(tight.step_span(), 4);
}

TEST(Tighten, RemovesArtificialSlack) {
  const auto inst = net::fig1_instance();
  const auto plan = greedy_schedule(inst);
  // Stretch the schedule: every step 3 units apart, starting at 100.
  timenet::UpdateSchedule padded;
  for (const auto& [v, t] : plan.schedule.entries()) {
    padded.set(v, timenet::TimePoint{100 + 3 * t.count()});
  }
  ASSERT_TRUE(timenet::verify_transition(inst, padded).ok());
  const auto tight = tighten_schedule(inst, padded);
  EXPECT_TRUE(timenet::verify_transition(inst, tight).ok());
  EXPECT_EQ(tight.first_time(), timenet::TimePoint{0});
  EXPECT_LE(tight.step_span(), plan.schedule.step_span());
}

TEST(Tighten, NeverWorsensRandomSchedules) {
  util::Rng rng(36);
  net::RandomInstanceOptions opt;
  opt.n = 10;
  for (int i = 0; i < 10; ++i) {
    const auto inst = net::random_instance(opt, rng);
    GreedyOptions gopts;
    gopts.record_steps = false;
    const auto plan = greedy_schedule(inst, gopts);
    if (!plan.feasible() || plan.schedule.empty()) continue;
    const auto tight = tighten_schedule(inst, plan.schedule);
    EXPECT_LE(tight.step_span(), plan.schedule.step_span());
    EXPECT_TRUE(timenet::verify_transition(inst, tight).ok());
    EXPECT_EQ(tight.size(), plan.schedule.size());
  }
}

TEST(Tighten, RejectsUnsafeInput) {
  const auto inst = net::fig1_instance();
  timenet::UpdateSchedule bad;
  for (const auto v : inst.switches_to_update()) bad.set(v, timenet::TimePoint{0});
  EXPECT_THROW(tighten_schedule(inst, bad), std::invalid_argument);
}

TEST(Tighten, EmptyScheduleStaysEmpty) {
  const auto inst = net::fig1_instance();
  EXPECT_TRUE(tighten_schedule(inst, {}).empty());
}

}  // namespace
}  // namespace chronus::core
