// Unit tests for the net substrate: graph, paths, update instances and
// generators (including the paper's Fig. 1 example instance).
#include <gtest/gtest.h>

#include "net/generators.hpp"
#include "net/graph.hpp"
#include "net/instance.hpp"
#include "net/path.hpp"

namespace chronus::net {
namespace {

Graph small_graph() {
  Graph g;
  g.add_nodes(4);
  g.add_link(0, 1, net::Capacity{1.0}, 1);
  g.add_link(1, 2, net::Capacity{2.0}, 2);
  g.add_link(2, 3, net::Capacity{1.0}, 3);
  g.add_link(0, 2, net::Capacity{1.5}, 1);
  return g;
}

TEST(Graph, NodeAndLinkCounts) {
  const Graph g = small_graph();
  EXPECT_EQ(g.node_count(), 4u);
  EXPECT_EQ(g.link_count(), 4u);
}

TEST(Graph, AutoNamesAreOneBased) {
  Graph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node("core");
  EXPECT_EQ(g.name(a), "v1");
  EXPECT_EQ(g.name(b), "core");
}

TEST(Graph, FindLink) {
  const Graph g = small_graph();
  EXPECT_TRUE(g.has_link(0, 1));
  EXPECT_FALSE(g.has_link(1, 0));
  EXPECT_FALSE(g.has_link(3, 0));
}

TEST(Graph, CapacityAndDelayAccessors) {
  const Graph g = small_graph();
  EXPECT_DOUBLE_EQ(g.capacity(1, 2).value(), 2.0);
  EXPECT_EQ(g.delay(2, 3), 3);
  EXPECT_THROW(g.capacity(3, 0), std::invalid_argument);
}

TEST(Graph, AdjacencyLists) {
  const Graph g = small_graph();
  EXPECT_EQ(g.out_links(0).size(), 2u);
  EXPECT_EQ(g.in_links(2).size(), 2u);
  EXPECT_EQ(g.out_links(3).size(), 0u);
}

TEST(Graph, MaxDelay) {
  const Graph g = small_graph();
  EXPECT_EQ(g.max_delay(), 3);
  EXPECT_EQ(Graph{}.max_delay(), 1);
}

TEST(Graph, RejectsInvalidLinks) {
  Graph g;
  g.add_nodes(2);
  EXPECT_THROW(g.add_link(0, 0, net::Capacity{1.0}, 1), std::invalid_argument);  // self loop
  EXPECT_THROW(g.add_link(0, 1, net::Capacity{0.0}, 1), std::invalid_argument);  // no capacity
  EXPECT_THROW(g.add_link(0, 1, net::Capacity{1.0}, 0), std::invalid_argument);  // zero delay
  EXPECT_THROW(g.add_link(0, 5, net::Capacity{1.0}, 1), std::out_of_range);      // bad node
  g.add_link(0, 1, net::Capacity{1.0}, 1);
  EXPECT_THROW(g.add_link(0, 1, net::Capacity{2.0}, 1), std::invalid_argument);  // duplicate
}

TEST(Path, BasicAccessors) {
  const Path p{0, 1, 2, 3};
  EXPECT_EQ(p.size(), 4u);
  EXPECT_EQ(p.front(), 0u);
  EXPECT_EQ(p.back(), 3u);
  EXPECT_TRUE(p.contains(2));
  EXPECT_FALSE(p.contains(9));
  EXPECT_EQ(p.index_of(2), 2u);
  EXPECT_EQ(p.index_of(9), Path::npos);
}

TEST(Path, NextAndPrevHop) {
  const Path p{0, 1, 2};
  EXPECT_EQ(p.next_hop(0), 1u);
  EXPECT_EQ(p.next_hop(2), kInvalidNode);
  EXPECT_EQ(p.next_hop(7), kInvalidNode);
  EXPECT_EQ(p.prev_hop(2), 1u);
  EXPECT_EQ(p.prev_hop(0), kInvalidNode);
}

TEST(Path, Simplicity) {
  EXPECT_TRUE((Path{0, 1, 2}).is_simple());
  EXPECT_FALSE((Path{0, 1, 0}).is_simple());
}

TEST(Path, SuffixFrom) {
  const Path p{0, 1, 2, 3};
  EXPECT_EQ(p.suffix_from(2), (Path{2, 3}));
  EXPECT_TRUE(p.suffix_from(9).empty());
}

TEST(Path, DelayAndLinks) {
  const Graph g = small_graph();
  const Path p{0, 1, 2, 3};
  EXPECT_EQ(path_delay(g, p), 6);
  EXPECT_EQ(path_links(g, p).size(), 3u);
  EXPECT_TRUE(path_exists_in(g, p));
  EXPECT_FALSE(path_exists_in(g, Path{0, 3}));
  EXPECT_THROW(path_links(g, Path{0, 3}), std::invalid_argument);
}

TEST(Path, MinCapacity) {
  const Graph g = small_graph();
  EXPECT_DOUBLE_EQ(path_min_capacity(g, Path{0, 1, 2}).value(), 1.0);
  EXPECT_THROW(path_min_capacity(g, Path{0}), std::invalid_argument);
}

TEST(Path, ToString) {
  const Graph g = small_graph();
  EXPECT_EQ(to_string(g, Path{0, 1}), "v1 -> v2");
}

TEST(UpdateInstance, FromPathsValidation) {
  Graph g = small_graph();
  EXPECT_NO_THROW(
      UpdateInstance::from_paths(g, Path{0, 1, 2, 3}, Path{0, 2, 3}, net::Demand{1.0}));
  // Different destinations.
  EXPECT_THROW(
      UpdateInstance::from_paths(g, Path{0, 1, 2}, Path{0, 2, 3}, net::Demand{1.0}),
      std::invalid_argument);
  // Non-positive demand.
  EXPECT_THROW(
      UpdateInstance::from_paths(g, Path{0, 1, 2, 3}, Path{0, 2, 3}, net::Demand{0.0}),
      std::invalid_argument);
  // Missing link.
  EXPECT_THROW(
      UpdateInstance::from_paths(g, Path{0, 3}, Path{0, 2, 3}, net::Demand{1.0}),
      std::invalid_argument);
}

TEST(UpdateInstance, NextHopFunctions) {
  const auto inst = UpdateInstance::from_paths(small_graph(), Path{0, 1, 2, 3},
                                               Path{0, 2, 3}, net::Demand{1.0});
  EXPECT_EQ(inst.old_next(0), std::optional<NodeId>(1));
  EXPECT_EQ(inst.new_next(0), std::optional<NodeId>(2));
  EXPECT_EQ(inst.old_next(1), std::optional<NodeId>(2));
  // Node 1 is only on the old path: its rule is kept.
  EXPECT_EQ(inst.new_next(1), std::optional<NodeId>(2));
  EXPECT_FALSE(inst.needs_update(1));
  EXPECT_FALSE(inst.old_next(3).has_value());
}

TEST(UpdateInstance, SwitchesToUpdate) {
  const auto inst = UpdateInstance::from_paths(small_graph(), Path{0, 1, 2, 3},
                                               Path{0, 2, 3}, net::Demand{1.0});
  // Only the source changes its next hop (2 -> 3 is shared by both paths).
  EXPECT_EQ(inst.switches_to_update(), std::vector<NodeId>{0});
}

TEST(UpdateInstance, RedirectRules) {
  auto inst = UpdateInstance::from_paths(small_graph(), Path{0, 1, 2, 3},
                                         Path{0, 2, 3}, net::Demand{1.0});
  inst.set_new_next(1, 2);  // same as old: still no update needed
  EXPECT_FALSE(inst.needs_update(1));
  EXPECT_THROW(inst.set_new_next(1, 0), std::invalid_argument);  // no link
}

TEST(UpdateInstance, TouchedNodes) {
  const auto inst = UpdateInstance::from_paths(small_graph(), Path{0, 1, 2, 3},
                                               Path{0, 2, 3}, net::Demand{1.0});
  EXPECT_EQ(inst.touched_nodes(), (std::vector<NodeId>{0, 1, 2, 3}));
}

TEST(UpdateInstance, WithGraphReplacesCapacities) {
  const auto inst = UpdateInstance::from_paths(small_graph(), Path{0, 1, 2, 3},
                                               Path{0, 2, 3}, net::Demand{1.0});
  Graph g2 = small_graph();
  g2.mutable_link(0).capacity = net::Capacity{9.0};
  const auto inst2 = inst.with_graph(g2);
  EXPECT_DOUBLE_EQ(inst2.graph().link(0).capacity.value(), 9.0);
  EXPECT_EQ(inst2.p_init(), inst.p_init());
  EXPECT_THROW(inst.with_graph(Graph{}), std::invalid_argument);
}

TEST(Fig1, MatchesThePaper) {
  const auto inst = fig1_instance();
  const Graph& g = inst.graph();
  EXPECT_EQ(g.node_count(), 6u);
  EXPECT_EQ(inst.p_init(), (Path{0, 1, 2, 3, 4, 5}));
  EXPECT_EQ(inst.p_fin(), (Path{0, 3, 2, 1, 5}));
  EXPECT_DOUBLE_EQ(inst.demand().value(), 1.0);
  // v5's redirect rule points to v2 (the paper's dashed link).
  EXPECT_EQ(inst.new_next(4), std::optional<NodeId>(1));
  // All of v1..v5 need updates; v6 (destination) does not.
  EXPECT_EQ(inst.switches_to_update(), (std::vector<NodeId>{0, 1, 2, 3, 4}));
  // Unit capacities and delays.
  for (LinkId id = 0; id < g.link_count(); ++id) {
    EXPECT_DOUBLE_EQ(g.link(id).capacity.value(), 1.0);
    EXPECT_EQ(g.link(id).delay, 1);
  }
}

TEST(LineTopology, Shape) {
  const Graph g = line_topology(5, net::Capacity{2.0}, 3);
  EXPECT_EQ(g.node_count(), 5u);
  EXPECT_EQ(g.link_count(), 4u);
  EXPECT_TRUE(g.has_link(0, 1));
  EXPECT_FALSE(g.has_link(1, 0));
  EXPECT_THROW(line_topology(1, net::Capacity{1.0}, 1), std::invalid_argument);
}

TEST(RandomInstance, WellFormed) {
  util::Rng rng(101);
  RandomInstanceOptions opt;
  opt.n = 12;
  for (int i = 0; i < 50; ++i) {
    const auto inst = random_instance(opt, rng);
    EXPECT_EQ(inst.graph().node_count(), 12u);
    EXPECT_EQ(inst.p_init().size(), 12u);
    EXPECT_TRUE(inst.p_init().is_simple());
    EXPECT_TRUE(inst.p_fin().is_simple());
    EXPECT_EQ(inst.p_init().front(), inst.p_fin().front());
    EXPECT_EQ(inst.p_init().back(), inst.p_fin().back());
    EXPECT_TRUE(path_exists_in(inst.graph(), inst.p_fin()));
  }
}

TEST(RandomInstance, DelaysWithinRange) {
  util::Rng rng(102);
  RandomInstanceOptions opt;
  opt.n = 10;
  opt.delay_min = 2;
  opt.delay_max = 4;
  const auto inst = random_instance(opt, rng);
  const Graph& g = inst.graph();
  for (LinkId id = 0; id < g.link_count(); ++id) {
    EXPECT_GE(g.link(id).delay, 2);
    EXPECT_LE(g.link(id).delay, 4);
  }
}

TEST(RandomInstance, CapacitiesAreTightOrSlack) {
  util::Rng rng(103);
  RandomInstanceOptions opt;
  opt.n = 10;
  opt.demand = net::Demand{3.0};
  const auto inst = random_instance(opt, rng);
  const Graph& g = inst.graph();
  for (LinkId id = 0; id < g.link_count(); ++id) {
    const double c = g.link(id).capacity.value();
    EXPECT_TRUE(c == 3.0 || c == 6.0) << c;
  }
}

TEST(RandomInstance, RespectsMinimumSize) {
  util::Rng rng(104);
  RandomInstanceOptions opt;
  opt.n = 3;
  EXPECT_THROW(random_instance(opt, rng), std::invalid_argument);
}

TEST(RandomInstance, DeterministicPerSeed) {
  RandomInstanceOptions opt;
  opt.n = 8;
  util::Rng a(7), b(7);
  const auto ia = random_instance(opt, a);
  const auto ib = random_instance(opt, b);
  EXPECT_EQ(ia.p_fin(), ib.p_fin());
  EXPECT_EQ(ia.graph().link_count(), ib.graph().link_count());
}

TEST(WanTopology, Bidirectional) {
  const Graph g = wan_topology(net::Capacity{10.0});
  EXPECT_EQ(g.node_count(), 11u);
  EXPECT_EQ(g.link_count(), 28u);
  for (LinkId id = 0; id < g.link_count(); ++id) {
    const Link& l = g.link(id);
    EXPECT_TRUE(g.has_link(l.dst, l.src));
  }
}

}  // namespace
}  // namespace chronus::net
