// Bench-trajectory conformance: every checked-in BENCH_*.json must parse
// and carry the machinery the CI perf gate relies on — required keys, the
// `*_wall_us` masking convention (wall-clock columns are the only fields
// the cross-run comparison may strip), and the declared noise bands /
// speedup floors the bench-smoke job enforces. A BENCH file that drifts
// out of this schema would silently disarm the regression gate, so the
// schema itself is a tier-1 test.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace chronus {
namespace {

// ---- minimal self-contained JSON reader ------------------------------------
// The rpc codec's parser is internal to its translation unit and the test
// must not grow a dependency on the wire layer to read bench sidecars, so
// this is a ~100-line recursive-descent reader for the subset google
// benchmark and util::JsonWriter emit.

struct Json {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<Json> arr;
  std::vector<std::pair<std::string, Json>> obj;

  const Json* find(const std::string& k) const {
    for (const auto& [key, value] : obj) {
      if (key == k) return &value;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string text) : s_(std::move(text)) {}

  Json parse() {
    Json v = value();
    skip_ws();
    if (i_ != s_.size()) fail("trailing content");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("json error at offset " + std::to_string(i_) +
                             ": " + why);
  }
  void skip_ws() {
    while (i_ < s_.size() && (s_[i_] == ' ' || s_[i_] == '\t' ||
                              s_[i_] == '\n' || s_[i_] == '\r')) {
      ++i_;
    }
  }
  char peek() {
    skip_ws();
    if (i_ >= s_.size()) fail("unexpected end");
    return s_[i_];
  }
  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++i_;
  }

  Json value() {
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string_value();
      case 't': case 'f': return boolean();
      case 'n': return null();
      default: return number();
    }
  }

  Json object() {
    Json v;
    v.kind = Json::Kind::kObject;
    expect('{');
    if (peek() == '}') { ++i_; return v; }
    while (true) {
      Json key = string_value();
      expect(':');
      v.obj.emplace_back(std::move(key.str), value());
      if (peek() == ',') { ++i_; continue; }
      expect('}');
      return v;
    }
  }

  Json array() {
    Json v;
    v.kind = Json::Kind::kArray;
    expect('[');
    if (peek() == ']') { ++i_; return v; }
    while (true) {
      v.arr.push_back(value());
      if (peek() == ',') { ++i_; continue; }
      expect(']');
      return v;
    }
  }

  Json string_value() {
    Json v;
    v.kind = Json::Kind::kString;
    expect('"');
    while (true) {
      if (i_ >= s_.size()) fail("unterminated string");
      const char c = s_[i_++];
      if (c == '"') return v;
      if (c != '\\') { v.str.push_back(c); continue; }
      if (i_ >= s_.size()) fail("dangling escape");
      const char e = s_[i_++];
      switch (e) {
        case '"': v.str.push_back('"'); break;
        case '\\': v.str.push_back('\\'); break;
        case '/': v.str.push_back('/'); break;
        case 'b': v.str.push_back('\b'); break;
        case 'f': v.str.push_back('\f'); break;
        case 'n': v.str.push_back('\n'); break;
        case 'r': v.str.push_back('\r'); break;
        case 't': v.str.push_back('\t'); break;
        case 'u': {
          if (i_ + 4 > s_.size()) fail("bad \\u escape");
          unsigned cp = 0;
          for (int k = 0; k < 4; ++k) {
            const char h = s_[i_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u digit");
          }
          // UTF-8 encode the BMP code point (sidecars never need more).
          if (cp < 0x80) {
            v.str.push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            v.str.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            v.str.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else {
            v.str.push_back(static_cast<char>(0xE0 | (cp >> 12)));
            v.str.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            v.str.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  Json boolean() {
    Json v;
    v.kind = Json::Kind::kBool;
    if (s_.compare(i_, 4, "true") == 0) { v.boolean = true; i_ += 4; return v; }
    if (s_.compare(i_, 5, "false") == 0) { i_ += 5; return v; }
    fail("bad literal");
  }

  Json null() {
    if (s_.compare(i_, 4, "null") != 0) fail("bad literal");
    i_ += 4;
    return Json{};
  }

  Json number() {
    const std::size_t start = i_;
    while (i_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[i_])) != 0 ||
            s_[i_] == '-' || s_[i_] == '+' || s_[i_] == '.' ||
            s_[i_] == 'e' || s_[i_] == 'E')) {
      ++i_;
    }
    if (i_ == start) fail("expected a value");
    Json v;
    v.kind = Json::Kind::kNumber;
    v.number = std::strtod(s_.c_str() + start, nullptr);
    return v;
  }

  std::string s_;
  std::size_t i_ = 0;
};

Json parse_file(const std::filesystem::path& p) {
  std::ifstream in(p);
  EXPECT_TRUE(in.good()) << p;
  std::ostringstream buf;
  buf << in.rdbuf();
  return JsonParser(buf.str()).parse();
}

// ---- schema ----------------------------------------------------------------

constexpr const char* kSchemaTag = "bench-trajectory-v1";

std::vector<std::filesystem::path> bench_files() {
  std::vector<std::filesystem::path> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(CHRONUS_SOURCE_DIR)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("BENCH_", 0) == 0 && name.size() > 5 &&
        name.substr(name.size() - 5) == ".json") {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

double required_number(const Json& obj, const char* key,
                       const std::string& where) {
  const Json* v = obj.find(key);
  EXPECT_NE(v, nullptr) << where << ": missing " << key;
  if (v == nullptr) return 0.0;
  EXPECT_EQ(v->kind, Json::Kind::kNumber) << where << ": " << key;
  return v->number;
}

std::string required_string(const Json& obj, const char* key,
                            const std::string& where) {
  const Json* v = obj.find(key);
  EXPECT_NE(v, nullptr) << where << ": missing " << key;
  if (v == nullptr || v->kind != Json::Kind::kString) {
    EXPECT_EQ(v == nullptr ? Json::Kind::kNull : v->kind, Json::Kind::kString)
        << where << ": " << key;
    return {};
  }
  return v->str;
}

/// google-benchmark documents: context carries the trajectory declaration
/// through AddCustomContext (string values), benchmarks carry the rows.
void validate_micro(const Json& doc, const std::string& where) {
  const Json* ctx = doc.find("context");
  ASSERT_NE(ctx, nullptr) << where;
  const Json* benchmarks = doc.find("benchmarks");
  ASSERT_NE(benchmarks, nullptr) << where;
  ASSERT_FALSE(benchmarks->arr.empty()) << where;

  EXPECT_EQ(required_string(*ctx, "chronus_schema", where), kSchemaTag)
      << where;
  const double band =
      std::atof(required_string(*ctx, "chronus_noise_band_pct", where).c_str());
  EXPECT_GE(band, 0.0) << where;
  EXPECT_LE(band, 100.0) << where;
  const double floor = std::atof(
      required_string(*ctx, "chronus_arena_min_speedup", where).c_str());
  EXPECT_GE(floor, 1.0) << where;

  std::set<std::string> names;
  for (const Json& b : benchmarks->arr) {
    const std::string name = required_string(b, "name", where);
    EXPECT_FALSE(name.empty()) << where;
    names.insert(name);
    if (required_string(b, "run_type", where) != "iteration") continue;
    EXPECT_GE(required_number(b, "iterations", where + "/" + name), 1.0);
    EXPECT_GE(required_number(b, "real_time", where + "/" + name), 0.0);
    EXPECT_GE(required_number(b, "cpu_time", where + "/" + name), 0.0);
    EXPECT_EQ(required_string(b, "time_unit", where + "/" + name), "ns");
  }

  // Every declared arena family must be present in both backings, or the
  // CI speedup gate would pass vacuously.
  const std::string families =
      required_string(*ctx, "chronus_arena_families", where);
  EXPECT_FALSE(families.empty()) << where;
  std::istringstream split(families);
  std::string family;
  while (std::getline(split, family, ',')) {
    for (const char* backing : {"arena:0", "arena:1"}) {
      bool found = false;
      for (const std::string& name : names) {
        if (name.rfind(family + "/", 0) == 0 &&
            name.find(backing) != std::string::npos) {
          found = true;
          break;
        }
      }
      EXPECT_TRUE(found) << where << ": family " << family << " missing a "
                         << backing << " variant";
    }
  }
}

/// util::JsonWriter row documents (ext_service, ext_rpc): a meta header
/// declaring the band, then homogeneous rows where every wall-clock field
/// follows the `*_wall_us` naming convention the CI strip relies on.
void validate_rows(const Json& doc, const std::string& where) {
  EXPECT_FALSE(required_string(doc, "bench", where).empty()) << where;
  const Json* meta = doc.find("meta");
  ASSERT_NE(meta, nullptr) << where;
  EXPECT_EQ(required_string(*meta, "schema", where), kSchemaTag) << where;
  const double band = required_number(*meta, "noise_band_pct", where);
  EXPECT_GE(band, 0.0) << where;
  EXPECT_LE(band, 100.0) << where;

  const Json* rows = doc.find("rows");
  ASSERT_NE(rows, nullptr) << where;
  ASSERT_FALSE(rows->arr.empty()) << where;

  std::set<std::string> first_keys;
  for (const auto& [k, v] : rows->arr.front().obj) first_keys.insert(k);
  for (const Json& row : rows->arr) {
    ASSERT_EQ(row.kind, Json::Kind::kObject) << where;
    std::set<std::string> keys;
    for (const auto& [k, v] : row.obj) {
      keys.insert(k);
      const bool mentions_wall = k.find("wall") != std::string::npos;
      const bool follows_convention =
          k.size() >= 8 && k.substr(k.size() - 8) == "_wall_us";
      EXPECT_EQ(mentions_wall, follows_convention)
          << where << ": field '" << k
          << "' breaks the *_wall_us masking convention";
      if (follows_convention) {
        EXPECT_EQ(v.kind, Json::Kind::kNumber) << where << ": " << k;
      }
    }
    EXPECT_EQ(keys, first_keys) << where << ": rows are not homogeneous";
  }
}

TEST(BenchSchema, EveryCheckedInBenchFileConforms) {
  const auto files = bench_files();
  ASSERT_FALSE(files.empty()) << "no BENCH_*.json at " << CHRONUS_SOURCE_DIR;
  for (const auto& path : files) {
    SCOPED_TRACE(path.string());
    Json doc;
    ASSERT_NO_THROW(doc = parse_file(path));
    ASSERT_EQ(doc.kind, Json::Kind::kObject);
    if (doc.find("benchmarks") != nullptr) {
      validate_micro(doc, path.filename().string());
    } else {
      validate_rows(doc, path.filename().string());
    }
  }
}

TEST(BenchSchema, ParserRejectsMalformedDocuments) {
  EXPECT_THROW(JsonParser("{\"a\":").parse(), std::runtime_error);
  EXPECT_THROW(JsonParser("[1,]").parse(), std::runtime_error);
  EXPECT_THROW(JsonParser("{\"a\":1} x").parse(), std::runtime_error);
  EXPECT_THROW(JsonParser("\"\\q\"").parse(), std::runtime_error);

  const Json v = JsonParser(
      "{\"s\":\"a\\u00e9b\",\"n\":-1.5e3,\"b\":true,\"z\":null,"
      "\"l\":[1,2]}").parse();
  EXPECT_EQ(v.find("s")->str, "a\xC3\xA9" "b");
  EXPECT_EQ(v.find("n")->number, -1500.0);
  EXPECT_TRUE(v.find("b")->boolean);
  EXPECT_EQ(v.find("l")->arr.size(), 2u);
}

}  // namespace
}  // namespace chronus
