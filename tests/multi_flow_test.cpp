// Tests for the multi-flow scheduling extension: sequential transitions
// with static-load capacity reduction and combined re-verification.
#include <gtest/gtest.h>

#include "core/multi_flow.hpp"
#include "net/generators.hpp"
#include "timenet/verifier.hpp"

namespace chronus::core {
namespace {

using net::NodeId;
using net::Path;

/// Two flows on a shared diamond: s1/s2 -> m -> t, each rerouting to a
/// private bypass. Capacities sized so both transitions are feasible.
std::vector<net::UpdateInstance> diamond_flows(double shared_cap) {
  net::Graph g;
  g.add_nodes(6);  // s1=0 s2=1 m=2 t=3 b1=4 b2=5
  g.add_link(0, 2, net::Capacity{2.0}, 1);
  g.add_link(1, 2, net::Capacity{2.0}, 1);
  g.add_link(2, 3, net::Capacity{shared_cap}, 1);
  g.add_link(0, 4, net::Capacity{2.0}, 1);
  g.add_link(4, 3, net::Capacity{2.0}, 1);
  g.add_link(1, 5, net::Capacity{2.0}, 1);
  g.add_link(5, 3, net::Capacity{2.0}, 1);
  std::vector<net::UpdateInstance> flows;
  flows.push_back(
      net::UpdateInstance::from_paths(g, Path{0, 2, 3}, Path{0, 4, 3}, net::Demand{1.0}));
  flows.push_back(
      net::UpdateInstance::from_paths(g, Path{1, 2, 3}, Path{1, 5, 3}, net::Demand{1.0}));
  return flows;
}

TEST(MultiFlow, EmptyInputIsFeasible) {
  const MultiFlowResult res = schedule_flows_sequentially({});
  EXPECT_TRUE(res.feasible());
  EXPECT_EQ(res.total_span, 0);
}

TEST(MultiFlow, TwoFlowsOffSharedLink) {
  const auto flows = diamond_flows(2.0);
  const MultiFlowResult res = schedule_flows_sequentially(flows);
  ASSERT_TRUE(res.feasible()) << res.message;
  ASSERT_EQ(res.schedules.size(), 2u);
  EXPECT_FALSE(res.schedules[0].empty());
  EXPECT_FALSE(res.schedules[1].empty());
  // Combined plan is clean under the original capacities.
  std::vector<timenet::FlowTransition> ts;
  for (std::size_t k = 0; k < flows.size(); ++k) {
    timenet::FlowTransition ft;
    ft.instance = &flows[k];
    ft.schedule = &res.schedules[k];
    ts.push_back(ft);
  }
  EXPECT_TRUE(verify_transitions(ts).ok());
}

TEST(MultiFlow, TransitionsAreSeparatedInTime) {
  const auto flows = diamond_flows(2.0);
  const MultiFlowResult res = schedule_flows_sequentially(flows);
  ASSERT_TRUE(res.feasible());
  // Flow 1 starts strictly after flow 0 finished draining.
  EXPECT_GT(res.schedules[1].first_time(), res.schedules[0].last_time());
  EXPECT_GE(res.total_span, res.schedules[1].last_time() -
                                res.schedules[0].first_time() + 1);
}

TEST(MultiFlow, StaticLoadMakesTightLinksUnusable) {
  // The shared link m->t holds only one flow (capacity 1.0): while flow 1
  // still rides it, flow 0's scheduler must not route through it — but
  // flow 0 *leaves* m->t, so this stays feasible; the instructive case is
  // a flow trying to move ONTO a saturated link.
  net::Graph g;
  g.add_nodes(4);  // s1=0 s2=1 m=2 t=3
  g.add_link(0, 2, net::Capacity{2.0}, 1);
  g.add_link(1, 2, net::Capacity{2.0}, 1);
  g.add_link(2, 3, net::Capacity{1.0}, 1);  // saturated by flow 1 forever
  g.add_link(0, 3, net::Capacity{2.0}, 1);  // flow 0's old direct path
  std::vector<net::UpdateInstance> flows;
  // Flow 0 wants to move onto m->t, which flow 1 occupies permanently.
  flows.push_back(
      net::UpdateInstance::from_paths(g, Path{0, 3}, Path{0, 2, 3}, net::Demand{1.0}));
  flows.push_back(
      net::UpdateInstance::from_paths(g, Path{1, 2, 3}, Path{1, 2, 3}, net::Demand{1.0}));
  const MultiFlowResult res = schedule_flows_sequentially(flows);
  EXPECT_FALSE(res.feasible());
}

TEST(MultiFlow, MismatchedGraphsRejected) {
  auto flows = diamond_flows(2.0);
  net::Graph other = net::line_topology(3, net::Capacity{1.0}, 1);
  flows.push_back(
      net::UpdateInstance::from_paths(other, Path{0, 1, 2}, Path{0, 1, 2}, net::Demand{1.0}));
  EXPECT_THROW(schedule_flows_sequentially(flows), std::invalid_argument);
}

TEST(MultiFlowJoint, SchedulesTheDiamondWithShorterSpan) {
  const auto flows = diamond_flows(2.0);
  const MultiFlowResult joint = schedule_flows_jointly(flows);
  const MultiFlowResult seq = schedule_flows_sequentially(flows);
  ASSERT_TRUE(joint.feasible()) << joint.message;
  ASSERT_TRUE(seq.feasible());
  // No inter-flow drain separation: the joint plan overlaps transitions.
  EXPECT_LT(joint.total_span, seq.total_span);
  std::vector<timenet::FlowTransition> ts;
  for (std::size_t k = 0; k < flows.size(); ++k) {
    timenet::FlowTransition ft;
    ft.instance = &flows[k];
    ft.schedule = &joint.schedules[k];
    ts.push_back(ft);
  }
  EXPECT_TRUE(verify_transitions(ts).ok());
}

TEST(MultiFlowJoint, SucceedsWhereInputOrderFails) {
  // Flow 0 wants to move onto flow 1's old link; flow 1 vacates onto a
  // private bypass. Sequentially in input order, flow 0 is stuck behind
  // flow 1's static load; jointly, flow 1 simply moves first.
  net::Graph g;
  g.add_nodes(5);  // s0=0 s1=1 m=2 t=3 b=4
  g.add_link(0, 2, net::Capacity{2.0}, 1);
  g.add_link(2, 3, net::Capacity{1.0}, 1);  // the contested link, one flow only
  g.add_link(0, 3, net::Capacity{1.0}, 1);  // flow 0's old direct path
  g.add_link(1, 2, net::Capacity{2.0}, 1);
  g.add_link(1, 4, net::Capacity{1.0}, 1);  // flow 1's bypass
  g.add_link(4, 3, net::Capacity{1.0}, 1);
  std::vector<net::UpdateInstance> flows;
  flows.push_back(
      net::UpdateInstance::from_paths(g, Path{0, 3}, Path{0, 2, 3}, net::Demand{1.0}));
  flows.push_back(
      net::UpdateInstance::from_paths(g, Path{1, 2, 3}, Path{1, 4, 3}, net::Demand{1.0}));

  EXPECT_FALSE(schedule_flows_sequentially(flows).feasible());
  const MultiFlowResult joint = schedule_flows_jointly(flows);
  ASSERT_TRUE(joint.feasible()) << joint.message;
  std::vector<timenet::FlowTransition> ts;
  for (std::size_t k = 0; k < flows.size(); ++k) {
    timenet::FlowTransition ft;
    ft.instance = &flows[k];
    ft.schedule = &joint.schedules[k];
    ts.push_back(ft);
  }
  EXPECT_TRUE(verify_transitions(ts).ok());
}

TEST(MultiFlowJoint, RejectsOverloadedInitialState) {
  net::Graph g;
  g.add_nodes(3);
  g.add_link(0, 2, net::Capacity{1.0}, 1);  // capacity for one flow...
  g.add_link(1, 2, net::Capacity{1.0}, 1);
  std::vector<net::UpdateInstance> flows;  // ...but two ride link 0->2
  flows.push_back(
      net::UpdateInstance::from_paths(g, Path{0, 2}, Path{0, 2}, net::Demand{1.0}));
  flows.push_back(
      net::UpdateInstance::from_paths(g, Path{0, 2}, Path{0, 2}, net::Demand{1.0}));
  const MultiFlowResult res = schedule_flows_jointly(flows);
  EXPECT_FALSE(res.feasible());
  EXPECT_NE(res.message.find("initial configuration"), std::string::npos);
}

TEST(MultiFlowJoint, GenuineSwapDeadlockIsInfeasible) {
  // The classic no-headroom swap: flow A's new path is flow B's old
  // bottleneck and vice versa, both at exactly one flow of capacity.
  // Neither can move first, sequentially or jointly.
  net::Graph g;
  g.add_nodes(8);  // sA=0 sB=1 a=2 b=3 c=4 d=5 tA=6 tB=7
  g.add_link(2, 3, net::Capacity{1.0}, 1);  // L1, contested
  g.add_link(4, 5, net::Capacity{1.0}, 1);  // L2, contested
  for (const auto& [u, w] : std::vector<std::pair<net::NodeId, net::NodeId>>{
           {0, 2}, {0, 4}, {1, 2}, {1, 4}, {3, 6}, {5, 6}, {3, 7}, {5, 7}}) {
    g.add_link(u, w, net::Capacity{2.0}, 1);
  }
  std::vector<net::UpdateInstance> flows;
  flows.push_back(net::UpdateInstance::from_paths(
      g, Path{0, 2, 3, 6}, Path{0, 4, 5, 6}, net::Demand{1.0}));  // A: L1 -> L2
  flows.push_back(net::UpdateInstance::from_paths(
      g, Path{1, 4, 5, 7}, Path{1, 2, 3, 7}, net::Demand{1.0}));  // B: L2 -> L1
  EXPECT_FALSE(schedule_flows_sequentially(flows).feasible());
  const MultiFlowResult joint = schedule_flows_jointly(flows);
  EXPECT_FALSE(joint.feasible());
}

TEST(MultiFlowJoint, SingleFlowMatchesGreedy) {
  const auto inst = net::fig1_instance();
  const MultiFlowResult joint = schedule_flows_jointly({inst});
  ASSERT_TRUE(joint.feasible());
  const auto greedy = greedy_schedule(inst);
  EXPECT_EQ(joint.schedules[0], greedy.schedule);
}

TEST(MultiFlow, SingleFlowMatchesGreedyShape) {
  const auto inst = net::fig1_instance();
  const MultiFlowResult res = schedule_flows_sequentially({inst});
  ASSERT_TRUE(res.feasible()) << res.message;
  EXPECT_EQ(res.schedules[0].size(), 5u);
  EXPECT_EQ(res.total_span, 4);
}

}  // namespace
}  // namespace chronus::core
