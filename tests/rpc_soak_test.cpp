// The rpc subsystem's end-to-end gates.
//
// ThreeTransportDigest is the determinism contract of DESIGN.md §14: the
// same 200-request workload fed (a) as an in-process vector, (b) over 64
// binary loopback connections and (c) over JSON loopback connections
// must produce the bit-identical ServiceReport digest — the wire layer
// adds transports, never behaviour.
//
// ThousandSessionBackpressureSoak drives over a thousand short sessions
// in waves against one server whose intake queue is deliberately small,
// so the defer/pause/retry backpressure path is exercised continuously;
// the gate is liveness and conservation (every request ends in exactly
// one record, every session gets its report), not a digest.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "rpc/load_driver.hpp"
#include "rpc/server.hpp"
#include "service/service.hpp"
#include "service/workload.hpp"

namespace chronus::rpc {
namespace {

TEST(RpcSoakTest, ThreeTransportDigest) {
  service::WorkloadOptions wopt;
  wopt.requests = 200;
  wopt.seed = 5;
  const service::ServiceTrace trace = service::make_workload(wopt);

  service::ServiceOptions sopt;
  sopt.workers = 2;

  // (a) the in-process vector run.
  const service::ServiceReport direct =
      service::UpdateService(trace.graph, sopt).run(trace.requests);
  ASSERT_EQ(direct.total(), 200u);
  const std::string want = direct.digest();

  struct Transport {
    Codec codec;
    std::size_t connections;
  };
  // (b) binary over 64 connections, (c) JSON over 8.
  for (const Transport& t : {Transport{Codec::kBinary, 64},
                             Transport{Codec::kJson, 8}}) {
    ServerOptions opts;
    // Capacity above the workload size: nothing defers, every session
    // finishes its stream, and the whole workload lands in one planning
    // round — the precondition for digest equality with the vector run.
    opts.intake_capacity = 512;
    opts.service = sopt;
    Server server(trace.graph, opts);
    server.start();

    LoadOptions lopt;
    lopt.port = server.port();
    lopt.codec = t.codec;
    lopt.connections = t.connections;
    const LoadResult load = run_load(trace.graph, trace.requests, lopt);
    server.join();

    ASSERT_TRUE(load.ok) << to_string(t.codec) << ": " << load.error;
    EXPECT_EQ(load.acked, 200u);
    EXPECT_EQ(load.deferred, 0u);
    EXPECT_EQ(load.reports, t.connections);

    // Same digest on every connection's report and on the round itself.
    ASSERT_EQ(load.digests.size(), t.connections);
    for (const std::string& digest : load.digests) {
      EXPECT_EQ(digest, want) << to_string(t.codec);
    }
    const auto rounds = server.round_reports();
    ASSERT_EQ(rounds.size(), 1u) << to_string(t.codec);
    EXPECT_EQ(rounds[0].digest(), want) << to_string(t.codec);

    // And the records themselves, field for field.
    ASSERT_EQ(load.records.size(), direct.records.size());
    for (std::size_t i = 0; i < load.records.size(); ++i) {
      EXPECT_EQ(load.records[i], to_wire(direct.records[i]))
          << to_string(t.codec) << " record " << i;
    }
  }
}

TEST(RpcSoakTest, ThousandSessionBackpressureSoak) {
  constexpr std::size_t kWaves = 25;
  constexpr std::size_t kConnsPerWave = 41;  // 25 * 41 = 1025 sessions

  service::WorkloadOptions wopt;
  wopt.requests = static_cast<int>(kWaves * kConnsPerWave);
  wopt.pairs = 16;
  wopt.seed = 17;
  const service::ServiceTrace trace = service::make_workload(wopt);

  ServerOptions opts;
  // A deliberately tiny intake: the soft limit trips constantly, so the
  // whole defer -> pause -> next-round -> resume -> retry loop runs for
  // the life of the soak. Planning-only keeps the rounds cheap — the
  // subject here is the wire layer, not the executor.
  opts.intake_capacity = 16;
  opts.intake_soft_limit = 8;
  opts.service.workers = 2;
  opts.service.execute = false;
  Server server(trace.graph, opts);
  server.start();

  std::uint64_t total_acked = 0;
  std::uint64_t total_deferred = 0;
  std::uint64_t total_records = 0;
  std::uint64_t total_reports = 0;
  for (std::size_t wave = 0; wave < kWaves; ++wave) {
    std::vector<service::UpdateRequest> slice(
        trace.requests.begin() +
            static_cast<std::ptrdiff_t>(wave * kConnsPerWave),
        trace.requests.begin() +
            static_cast<std::ptrdiff_t>((wave + 1) * kConnsPerWave));
    LoadOptions lopt;
    lopt.port = server.port();
    lopt.codec = (wave % 2 == 0) ? Codec::kBinary : Codec::kJson;
    lopt.connections = kConnsPerWave;  // one request per session
    const LoadResult load = run_load(trace.graph, slice, lopt);
    ASSERT_TRUE(load.ok) << "wave " << wave << ": " << load.error;
    ASSERT_EQ(load.rejected, 0u) << "wave " << wave;
    total_acked += load.acked;
    total_deferred += load.deferred;
    total_records += load.records.size();
    total_reports += load.reports;
  }
  server.join();

  const std::uint64_t total = kWaves * kConnsPerWave;
  // Conservation: every request was eventually accepted exactly once and
  // came back as exactly one record; every session got its report.
  EXPECT_EQ(total_acked, total);
  EXPECT_EQ(total_records, total);
  EXPECT_EQ(total_reports, total);

  const ServerStats stats = server.stats();
  EXPECT_GE(stats.sessions, 1000u);
  EXPECT_EQ(stats.accepted, total);
  EXPECT_EQ(stats.protocol_errors, 0u);
  // The backpressure path genuinely ran: explicit deferrals were issued
  // (and retried — submits counts the retransmissions) and the workload
  // was spread across many planning rounds.
  EXPECT_GT(stats.deferred, 0u);
  EXPECT_EQ(stats.deferred, total_deferred);
  EXPECT_GT(stats.rounds, kWaves);
  EXPECT_EQ(stats.submits, stats.accepted + stats.deferred + stats.rejected);

  // Cross-round conservation on the server side too: the per-round
  // reports partition the request stream.
  std::uint64_t round_records = 0;
  for (const service::ServiceReport& rep : server.round_reports()) {
    round_records += rep.total();
  }
  EXPECT_EQ(round_records, total);
}

}  // namespace
}  // namespace chronus::rpc
