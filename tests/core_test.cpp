// Tests for the Chronus core: Algorithm 3 (dependency relation sets),
// Algorithm 4 (loop checks) and Algorithm 2 (the greedy scheduler) —
// validated against the paper's running example: the greedy must emit
// exactly the timed sequence v2@t0, v3@t1, {v1,v4}@t2, v5@t3 (Fig. 1) and
// the per-step dependency sets of Fig. 5.
#include <gtest/gtest.h>

#include "core/config.hpp"
#include "core/dependency.hpp"
#include "core/greedy_scheduler.hpp"
#include "core/loop_check.hpp"
#include "net/generators.hpp"
#include "timenet/verifier.hpp"

namespace chronus::core {
namespace {

using net::NodeId;
using net::Path;
using timenet::UpdateSchedule;

constexpr NodeId v1 = 0, v2 = 1, v3 = 2, v4 = 3, v5 = 4, v6 = 5;

std::set<NodeId> all_pending() { return {v1, v2, v3, v4, v5}; }

TEST(Config, CurrentNextMixesConfigs) {
  const auto inst = net::fig1_instance();
  EXPECT_EQ(current_next(inst, {}, v2), std::optional<NodeId>(v3));
  EXPECT_EQ(current_next(inst, {v2}, v2), std::optional<NodeId>(v6));
}

TEST(Config, ForwardingPathInitiallyOld) {
  const auto inst = net::fig1_instance();
  const auto p = current_forwarding_path(inst, {});
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(*p, inst.p_init());
}

TEST(Config, ForwardingPathAfterUpdates) {
  const auto inst = net::fig1_instance();
  const auto p = current_forwarding_path(inst, {v2});
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(*p, (Path{v1, v2, v6}));
}

TEST(Config, ForwardingPathDetectsLoopConfig) {
  // Updating only v3 and v4 yields v3->v2 ... but the steady path v1->v2
  // still reaches v6; build a genuinely looping config instead: update v4
  // only (v4->v3 old v3->v4).
  const auto inst = net::fig1_instance();
  const auto p = current_forwarding_path(inst, {v4});
  // Steady path: v1 v2 v3 v4 -> (new) v3: loop.
  EXPECT_FALSE(p.has_value());
}

TEST(Dependency, Fig5AtT0) {
  const auto inst = net::fig1_instance();
  const DependencySet deps = find_dependencies(inst, {}, all_pending());
  EXPECT_FALSE(deps.has_cycle);
  // Relations (v3 -> v1), (v2 -> v4), (v1 -> v5): chains rooted at v2 and
  // v3; only those two heads are eligible (and v3 is vetoed by the loop
  // check, so only v2 updates at t0 — the paper's "we can only update v2").
  const auto heads = deps.heads();
  EXPECT_EQ(std::set<NodeId>(heads.begin(), heads.end()),
            (std::set<NodeId>{v2, v3}));
  // v5 is chained behind v1, which is behind v3.
  bool found_chain = false;
  for (const auto& chain : deps.chains) {
    if (chain.front() == v3) {
      EXPECT_EQ(chain, (std::vector<NodeId>{v3, v1, v5}));
      found_chain = true;
    }
  }
  EXPECT_TRUE(found_chain);
}

TEST(Dependency, Fig5AtT1) {
  // After v2 updates, the dependency set is {(v3 v1 v5), (v4)} (Fig. 5).
  const auto inst = net::fig1_instance();
  const DependencySet deps =
      find_dependencies(inst, {v2}, {v1, v3, v4, v5});
  const auto heads = deps.heads();
  EXPECT_EQ(std::set<NodeId>(heads.begin(), heads.end()),
            (std::set<NodeId>{v3, v4}));
  ASSERT_EQ(deps.chains.size(), 2u);
  for (const auto& chain : deps.chains) {
    if (chain.front() == v3) {
      EXPECT_EQ(chain, (std::vector<NodeId>{v3, v1, v5}));
    } else {
      EXPECT_EQ(chain, (std::vector<NodeId>{v4}));
    }
  }
}

TEST(Dependency, Fig5AtT2) {
  // After v2 and v3: {(v1 v5), (v4)}.
  const auto inst = net::fig1_instance();
  const DependencySet deps = find_dependencies(inst, {v2, v3}, {v1, v4, v5});
  const auto heads = deps.heads();
  EXPECT_EQ(std::set<NodeId>(heads.begin(), heads.end()),
            (std::set<NodeId>{v1, v4}));
}

TEST(Dependency, Fig5AtT3) {
  // Only v5 remains and it is free.
  const auto inst = net::fig1_instance();
  const DependencySet deps =
      find_dependencies(inst, {v1, v2, v3, v4}, {v5});
  ASSERT_EQ(deps.chains.size(), 1u);
  EXPECT_EQ(deps.chains[0], (std::vector<NodeId>{v5}));
}

TEST(Dependency, SlackCapacityRemovesRelations) {
  // With all capacities >= 2d no dependency is needed.
  auto inst = net::fig1_instance();
  for (net::LinkId id = 0; id < inst.graph().link_count(); ++id) {
    inst.mutable_graph().mutable_link(id).capacity = net::Capacity{2.0};
  }
  const DependencySet deps = find_dependencies(inst, {}, all_pending());
  EXPECT_EQ(deps.chains.size(), 5u);  // everything is a singleton
  EXPECT_EQ(deps.heads().size(), 5u);
}

TEST(Dependency, ToStringRendersChains) {
  const auto inst = net::fig1_instance();
  const DependencySet deps = find_dependencies(inst, {}, all_pending());
  const std::string s = deps.to_string(inst.graph());
  EXPECT_NE(s.find("v3 -> v1 -> v5"), std::string::npos);
}

TEST(LoopCheck, ExactRejectsV3AtT0) {
  const auto inst = net::fig1_instance();
  UpdateSchedule sched;
  sched.set(v2, timenet::TimePoint{0});
  EXPECT_TRUE(exact_loop_check(inst, sched, v3, timenet::TimePoint{0}));
  EXPECT_FALSE(exact_loop_check(inst, sched, v3, timenet::TimePoint{1}));
}

TEST(LoopCheck, ExactRejectsV4UntilT2) {
  const auto inst = net::fig1_instance();
  UpdateSchedule sched;
  sched.set(v2, timenet::TimePoint{0});
  sched.set(v3, timenet::TimePoint{1});
  EXPECT_TRUE(exact_loop_check(inst, sched, v4, timenet::TimePoint{1}));
  EXPECT_FALSE(exact_loop_check(inst, sched, v4, timenet::TimePoint{2}));
}

TEST(LoopCheck, Algorithm4AgreesOnFig1) {
  const auto inst = net::fig1_instance();
  UpdateSchedule sched;
  sched.set(v2, timenet::TimePoint{0});
  EXPECT_TRUE(algorithm4_loop_check(inst, sched, {v2}, v3, timenet::TimePoint{0}));
  EXPECT_FALSE(algorithm4_loop_check(inst, sched, {v2}, v3, timenet::TimePoint{1}));
  sched.set(v3, timenet::TimePoint{1});
  EXPECT_TRUE(algorithm4_loop_check(inst, sched, {v2, v3}, v4, timenet::TimePoint{1}));
  EXPECT_FALSE(algorithm4_loop_check(inst, sched, {v2, v3}, v4, timenet::TimePoint{2}));
}

TEST(LoopCheck, StructuralUpstreamRule) {
  const auto inst = net::fig1_instance();
  // v3's new next hop v2 lies upstream of v3 on the current (old) path.
  EXPECT_TRUE(structural_loop_check(inst, {}, v3));
  // v2's new next hop v6 is downstream: safe.
  EXPECT_FALSE(structural_loop_check(inst, {}, v2));
}

TEST(Greedy, ReproducesPaperSchedule) {
  const auto inst = net::fig1_instance();
  const ScheduleResult res = greedy_schedule(inst);
  ASSERT_EQ(res.status, ScheduleStatus::kFeasible) << res.message;
  EXPECT_EQ(res.schedule.at(v2), std::optional<timenet::TimePoint>(0));
  EXPECT_EQ(res.schedule.at(v3), std::optional<timenet::TimePoint>(1));
  EXPECT_EQ(res.schedule.at(v1), std::optional<timenet::TimePoint>(2));
  EXPECT_EQ(res.schedule.at(v4), std::optional<timenet::TimePoint>(2));
  EXPECT_EQ(res.schedule.at(v5), std::optional<timenet::TimePoint>(3));
  EXPECT_EQ(res.schedule.step_span(), 4);
}

TEST(Greedy, PaperScheduleVerifiesClean) {
  const auto inst = net::fig1_instance();
  const ScheduleResult res = greedy_schedule(inst);
  const auto report = timenet::verify_transition(inst, res.schedule);
  EXPECT_TRUE(report.ok()) << report.to_string(inst.graph());
}

TEST(Greedy, PureModeMatchesGuardedOnFig1) {
  const auto inst = net::fig1_instance();
  GreedyOptions opts;
  opts.guard_with_verifier = false;
  const ScheduleResult res = greedy_schedule(inst, opts);
  ASSERT_EQ(res.status, ScheduleStatus::kFeasible) << res.message;
  EXPECT_EQ(res.schedule, greedy_schedule(inst).schedule);
  // Theorem 3: the pure dependency+Algorithm-4 schedule is still clean.
  EXPECT_TRUE(timenet::verify_transition(inst, res.schedule).ok());
}

TEST(Greedy, RecordsStepLogs) {
  const auto inst = net::fig1_instance();
  const ScheduleResult res = greedy_schedule(inst);
  ASSERT_EQ(res.steps.size(), 4u);
  EXPECT_EQ(res.steps[0].updated, (std::vector<NodeId>{v2}));
  EXPECT_EQ(res.steps[1].updated, (std::vector<NodeId>{v3}));
  EXPECT_EQ(res.steps[2].updated, (std::vector<NodeId>{v1, v4}));
  EXPECT_EQ(res.steps[3].updated, (std::vector<NodeId>{v5}));
}

TEST(Greedy, NoStepsWhenRequested) {
  const auto inst = net::fig1_instance();
  GreedyOptions opts;
  opts.record_steps = false;
  EXPECT_TRUE(greedy_schedule(inst, opts).steps.empty());
}

TEST(Greedy, NothingToUpdate) {
  net::Graph g = net::line_topology(3, net::Capacity{1.0}, 1);
  const auto inst =
      net::UpdateInstance::from_paths(g, Path{0, 1, 2}, Path{0, 1, 2}, net::Demand{1.0});
  const ScheduleResult res = greedy_schedule(inst);
  EXPECT_EQ(res.status, ScheduleStatus::kFeasible);
  EXPECT_TRUE(res.schedule.empty());
}

TEST(Greedy, SlackCapacityUpdatesFasterThanTight) {
  auto inst = net::fig1_instance();
  for (net::LinkId id = 0; id < inst.graph().link_count(); ++id) {
    inst.mutable_graph().mutable_link(id).capacity = net::Capacity{2.0};
  }
  const ScheduleResult res = greedy_schedule(inst);
  ASSERT_EQ(res.status, ScheduleStatus::kFeasible);
  // With slack everywhere only loop-freedom constrains the schedule, so it
  // finishes at least as fast as the tight-capacity schedule.
  EXPECT_LE(res.schedule.step_span(), 4);
  EXPECT_TRUE(timenet::verify_transition(inst, res.schedule).ok());
}

TEST(Greedy, InfeasibleOvertakingInstance) {
  // Old s->a->b->t (slow), new s->b->t (fast) over the tight shared link
  // b->t: the new flow always catches the old drain; no schedule exists.
  net::Graph g;
  g.add_nodes(4);
  g.add_link(0, 1, net::Capacity{1.0}, 2);
  g.add_link(1, 2, net::Capacity{1.0}, 2);
  g.add_link(2, 3, net::Capacity{1.0}, 2);
  g.add_link(0, 2, net::Capacity{1.0}, 1);
  const auto inst =
      net::UpdateInstance::from_paths(g, Path{0, 1, 2, 3}, Path{0, 2, 3}, net::Demand{1.0});
  const ScheduleResult res = greedy_schedule(inst);
  EXPECT_EQ(res.status, ScheduleStatus::kInfeasible);
}

TEST(Greedy, ForceCompleteAlwaysFinishes) {
  net::Graph g;
  g.add_nodes(4);
  g.add_link(0, 1, net::Capacity{1.0}, 2);
  g.add_link(1, 2, net::Capacity{1.0}, 2);
  g.add_link(2, 3, net::Capacity{1.0}, 2);
  g.add_link(0, 2, net::Capacity{1.0}, 1);
  const auto inst =
      net::UpdateInstance::from_paths(g, Path{0, 1, 2, 3}, Path{0, 2, 3}, net::Demand{1.0});
  GreedyOptions opts;
  opts.force_complete = true;
  const ScheduleResult res = greedy_schedule(inst, opts);
  EXPECT_EQ(res.status, ScheduleStatus::kBestEffort);
  // Every switch that needed an update received a time point.
  for (const NodeId v : inst.switches_to_update()) {
    EXPECT_TRUE(res.schedule.contains(v));
  }
  // The forced schedule congests (that is what Fig. 7 counts).
  EXPECT_FALSE(timenet::verify_transition(inst, res.schedule).ok());
}

TEST(Greedy, WaitsOutDrainWhenNeeded) {
  // Old s->a->b->t, new s->b->t with equal prefix delays and a tight b->t:
  // feasible, but only by letting the old traffic drain first.
  net::Graph g;
  g.add_nodes(4);
  g.add_link(0, 1, net::Capacity{1.0}, 1);
  g.add_link(1, 2, net::Capacity{1.0}, 1);
  g.add_link(2, 3, net::Capacity{1.0}, 1);
  g.add_link(0, 2, net::Capacity{1.0}, 2);  // equal total prefix delay
  const auto inst =
      net::UpdateInstance::from_paths(g, Path{0, 1, 2, 3}, Path{0, 2, 3}, net::Demand{1.0});
  const ScheduleResult res = greedy_schedule(inst);
  ASSERT_EQ(res.status, ScheduleStatus::kFeasible) << res.message;
  EXPECT_TRUE(timenet::verify_transition(inst, res.schedule).ok());
}

}  // namespace
}  // namespace chronus::core
