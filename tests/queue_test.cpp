// Tests for the fluid link-queue/loss analysis.
#include <gtest/gtest.h>

#include "sim/queue.hpp"

namespace chronus::sim {
namespace {

SimLink make_link(double capacity_bps) {
  SimLink l;
  l.capacity_bps = capacity_bps;
  return l;
}

TEST(QueueT, WithinCapacityNothingQueues) {
  SimLink l = make_link(100e6);
  l.offered_bps.add(0, 10 * kSecond, 80e6);
  const QueueStats s = analyze_queue(l, 1e6, 0, 10 * kSecond);
  EXPECT_DOUBLE_EQ(s.peak_queue_bytes, 0.0);
  EXPECT_DOUBLE_EQ(s.dropped_bytes, 0.0);
  EXPECT_EQ(s.backlogged_time, 0);
}

TEST(QueueT, TransientBurstAbsorbedByBuffer) {
  SimLink l = make_link(100e6);
  l.offered_bps.add(0, 20 * kSecond, 100e6);
  // 1 second of 50 Mbps excess = 6.25 MB, within a 10 MB buffer.
  l.offered_bps.add(5 * kSecond, 6 * kSecond, 50e6);
  const QueueStats s = analyze_queue(l, 10e6, 0, 20 * kSecond);
  EXPECT_NEAR(s.peak_queue_bytes, 6.25e6, 1.0);
  EXPECT_DOUBLE_EQ(s.dropped_bytes, 0.0);
  // Backlog persists past the burst until drained; at net -0 afterwards
  // (offered == capacity) it never drains within the window.
  EXPECT_GT(s.backlogged_time, 1 * kSecond);
}

TEST(QueueT, BurstDrainsWhenLoadDrops) {
  SimLink l = make_link(100e6);
  l.offered_bps.add(0, 1 * kSecond, 150e6);  // 1s at +50 Mbps: 6.25 MB queued
  l.offered_bps.add(1 * kSecond, 10 * kSecond, 50e6);  // then -50 Mbps
  const QueueStats s = analyze_queue(l, 100e6, 0, 10 * kSecond);
  EXPECT_NEAR(s.peak_queue_bytes, 6.25e6, 1.0);
  EXPECT_DOUBLE_EQ(s.dropped_bytes, 0.0);
  // 1 s of fill + 1 s of drain.
  EXPECT_NEAR(static_cast<double>(s.backlogged_time), 2e6, 1e4);
}

TEST(QueueT, OverflowDrops) {
  SimLink l = make_link(100e6);
  // 2 seconds of 100 Mbps excess = 25 MB against a 5 MB buffer:
  // the buffer fills after 0.4 s; the remaining 1.6 s of excess is lost.
  l.offered_bps.add(0, 2 * kSecond, 200e6);
  const QueueStats s = analyze_queue(l, 5e6, 0, 4 * kSecond);
  EXPECT_NEAR(s.peak_queue_bytes, 5e6, 1.0);
  EXPECT_NEAR(s.dropped_bytes, 100e6 * 1.6 / 8.0, 1e3);
  EXPECT_NEAR(static_cast<double>(s.dropping_time), 1.6e6, 1e4);
}

TEST(QueueT, ZeroBufferDropsAllExcess) {
  SimLink l = make_link(100e6);
  l.offered_bps.add(0, 1 * kSecond, 160e6);
  const QueueStats s = analyze_queue(l, 0.0, 0, 2 * kSecond);
  EXPECT_NEAR(s.dropped_bytes, 60e6 / 8.0, 1e3);
  EXPECT_DOUBLE_EQ(s.peak_queue_bytes, 0.0);
}

TEST(QueueT, WindowRestrictsAnalysis) {
  SimLink l = make_link(100e6);
  l.offered_bps.add(0, 10 * kSecond, 200e6);
  const QueueStats early = analyze_queue(l, 1e9, 0, 1 * kSecond);
  const QueueStats late = analyze_queue(l, 1e9, 0, 2 * kSecond);
  EXPECT_LT(early.peak_queue_bytes, late.peak_queue_bytes);
}

}  // namespace
}  // namespace chronus::sim
