// End-to-end updater tests: the three update mechanisms driven through the
// simulated control plane on the paper's Fig. 1 network, with the fluid
// data plane measuring what the transition did to the traffic.
#include <gtest/gtest.h>

#include "core/multi_flow.hpp"
#include "net/generators.hpp"
#include "sim/resilient_executor.hpp"
#include "sim/updaters.hpp"

#include <cstdlib>
#include "sim/traffic.hpp"

namespace chronus::sim {
namespace {

constexpr SimTime kDelayUnit = 200 * kMillisecond;  // one abstract time unit
constexpr double kBpsPerUnit = 500e6;               // capacity 1.0 -> 500 Mbps

struct Bench {
  net::UpdateInstance inst = net::fig1_instance();
  Network net{inst.graph(), kDelayUnit, kBpsPerUnit};
  EventQueue eq;
  util::Rng rng;
  ControlChannelModel model;
  SimFlowSpec spec;

  explicit Bench(std::uint64_t seed) : rng(seed) {
    spec.rate_bps = 500e6;  // saturates every unit-capacity link
  }
};

TrafficFlow flow_of(const SimFlowSpec& spec, SwitchId ingress) {
  TrafficFlow f;
  f.name = spec.name;
  f.header.dst = spec.dst_prefix + "1";
  f.header.src = spec.src_prefix + "1";
  f.header.in_port = kHostPort;
  f.ingress = ingress;
  f.rate_bps = spec.rate_bps;
  return f;
}

TEST(ChronusUpdater, TimedUpdateKeepsTrafficClean) {
  Bench b(11);
  Controller ctrl(b.eq, b.net, b.rng, b.model);
  install_initial_rules(ctrl, b.inst, b.spec);
  // t0 deliberately off the fluid-quantum grid: a rule flip coinciding with
  // a class boundary within the clock-sync error is the (real) microsecond
  // race Time4 leaves open, which the 20 ms quantum would alias into a
  // certainty.
  const SimTime t0 = 2 * kSecond + 10 * kMillisecond;
  const UpdateRunResult run =
      run_chronus_update(ctrl, b.inst, b.spec, t0, kDelayUnit);
  ASSERT_EQ(run.plan_status, core::ScheduleStatus::kFeasible) << run.note;
  ctrl.flush();

  // All five switches updated, at their planned instants (± clock error).
  ASSERT_EQ(run.applied.size(), 5u);
  EXPECT_NEAR(static_cast<double>(run.applied.at(1)),
              static_cast<double>(t0), 1000.0);  // v2@t0
  EXPECT_NEAR(static_cast<double>(run.applied.at(4)),
              static_cast<double>(t0 + 3 * kDelayUnit), 1000.0);  // v5@t3

  TraceOptions opts;
  opts.t_begin = 0;
  opts.t_end = 8 * kSecond;
  opts.quantum = 20 * kMillisecond;
  const TrafficReport rep =
      trace_traffic(b.net, {flow_of(b.spec, b.inst.source())}, opts);
  EXPECT_TRUE(rep.loops.empty());
  EXPECT_TRUE(rep.drops.empty());
  EXPECT_TRUE(rep.congestion.empty());
}

TEST(ChronusUpdater, ReportsInfeasiblePlans) {
  net::Graph g;
  g.add_nodes(4);
  g.add_link(0, 1, net::Capacity{1.0}, 2);
  g.add_link(1, 2, net::Capacity{1.0}, 2);
  g.add_link(2, 3, net::Capacity{1.0}, 2);
  g.add_link(0, 2, net::Capacity{1.0}, 1);
  const auto inst = net::UpdateInstance::from_paths(
      g, net::Path{0, 1, 2, 3}, net::Path{0, 2, 3}, net::Demand{1.0});
  Network net(inst.graph(), kDelayUnit, kBpsPerUnit);
  EventQueue eq;
  util::Rng rng(5);
  Controller ctrl(eq, net, rng);
  SimFlowSpec spec;
  spec.rate_bps = 500e6;
  install_initial_rules(ctrl, inst, spec);
  const UpdateRunResult run =
      run_chronus_update(ctrl, inst, spec, kSecond, kDelayUnit);
  EXPECT_EQ(run.plan_status, core::ScheduleStatus::kInfeasible);
  EXPECT_TRUE(run.applied.empty());
}

TEST(OrUpdater, AsynchronousRoundsOftenCongest) {
  int congested = 0;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    Bench b(100 + seed);
    Controller ctrl(b.eq, b.net, b.rng, b.model);
    install_initial_rules(ctrl, b.inst, b.spec);
    const UpdateRunResult run =
        run_or_update(ctrl, b.inst, b.spec, 2 * kSecond);
    ASSERT_EQ(run.plan_status, core::ScheduleStatus::kFeasible) << run.note;
    ASSERT_EQ(run.applied.size(), 5u);
    ctrl.flush();

    TraceOptions opts;
    opts.t_begin = 0;
    opts.t_end = run.finish + 5 * kSecond;
    opts.quantum = 20 * kMillisecond;
    const TrafficReport rep =
        trace_traffic(b.net, {flow_of(b.spec, b.inst.source())}, opts);
    congested += !rep.congestion.empty() || !rep.loops.empty();
  }
  // OR ignores capacities and in-flight traffic: most asynchronous
  // realizations on Fig. 1 produce transient congestion or loops.
  EXPECT_GE(congested, 1);
}

TEST(OrUpdater, AppliesEveryRuleExactlyOnce) {
  Bench b(7);
  Controller ctrl(b.eq, b.net, b.rng, b.model);
  install_initial_rules(ctrl, b.inst, b.spec);
  const UpdateRunResult run = run_or_update(ctrl, b.inst, b.spec, kSecond);
  ctrl.flush();
  for (const auto& [sw, at] : run.applied) {
    EXPECT_GE(at, kSecond);
    EXPECT_LE(at, run.finish);
  }
  // 1 initial install + 1 update per switch on p_init; v6 only initial.
  EXPECT_EQ(b.net.sw(0).mods_applied(), 2u);
  EXPECT_EQ(b.net.sw(5).mods_applied(), 1u);
}

TEST(TwoPhaseUpdater, VersionedTransitionIsCleanAndGarbageCollected) {
  Bench b(21);
  Controller ctrl(b.eq, b.net, b.rng, b.model);
  install_initial_rules(ctrl, b.inst, b.spec, /*versioned=*/true);
  const UpdateRunResult run = run_two_phase_update(
      ctrl, b.inst, b.spec, 2 * kSecond, /*drain_margin=*/3 * kSecond);
  ctrl.flush();
  EXPECT_GT(run.flip_time, 2 * kSecond);
  EXPECT_GT(run.finish, run.flip_time + 3 * kSecond);

  TraceOptions opts;
  opts.t_begin = 0;
  opts.t_end = run.finish + 2 * kSecond;
  opts.quantum = 20 * kMillisecond;
  const TrafficReport rep =
      trace_traffic(b.net, {flow_of(b.spec, b.inst.source())}, opts);
  // Per-packet consistency on Fig. 1 (paths share no link): clean.
  EXPECT_TRUE(rep.loops.empty());
  EXPECT_TRUE(rep.drops.empty()) << rep.drops.size();
  EXPECT_TRUE(rep.congestion.empty());

  // During the transition both generations coexisted; afterwards the old
  // generation is gone.
  const SwitchId ingress = b.inst.source();
  EXPECT_GT(b.net.sw(ingress).peak_table_size(),
            b.net.sw(ingress).table().size() - 1);
  // v5 (old path only) holds no rules after cleanup.
  EXPECT_EQ(b.net.sw(4).table().size(), 0u);
  // v2 and v3 are on the new path: exactly the new-generation rule remains.
  EXPECT_EQ(b.net.sw(1).table().size(), 1u);
  EXPECT_EQ(b.net.sw(2).table().size(), 1u);
}

TEST(TwoPhaseUpdater, OldPacketsDrainOnOldPath) {
  Bench b(22);
  Controller ctrl(b.eq, b.net, b.rng, b.model);
  install_initial_rules(ctrl, b.inst, b.spec, /*versioned=*/true);
  const UpdateRunResult run = run_two_phase_update(
      ctrl, b.inst, b.spec, 2 * kSecond, 3 * kSecond);
  ctrl.flush();
  TraceOptions opts;
  opts.t_begin = 0;
  opts.t_end = run.finish + 2 * kSecond;
  opts.quantum = 20 * kMillisecond;
  trace_traffic(b.net, {flow_of(b.spec, b.inst.source())}, opts);
  // Traffic flowed over the old tail (v5->v6) before the flip and over the
  // new tail (v2->v6) after it.
  const auto old_tail = *b.net.link_between(4, 5);
  const auto new_tail = *b.net.link_between(1, 5);
  EXPECT_GT(b.net.link(old_tail).offered_bps.at(kSecond), 0.0);
  EXPECT_DOUBLE_EQ(b.net.link(new_tail).offered_bps.at(kSecond), 0.0);
  EXPECT_GT(b.net.link(new_tail).offered_bps.at(run.flip_time + kSecond), 0.0);
  EXPECT_DOUBLE_EQ(
      b.net.link(old_tail).offered_bps.at(run.finish + kSecond), 0.0);
}

TEST(MultiFlowSim, JointPlanExecutesBothFlowsCleanly) {
  // Two aggregates over one fabric move to private bypasses; the joint
  // plan overlaps their transitions, and the fluid data plane confirms
  // neither traffic stream ever loops, drops or overloads a link.
  net::Graph g;
  g.add_nodes(6);  // s0=0 s1=1 m=2 t=3 b0=4 b1=5
  g.add_link(0, 2, net::Capacity{2.0}, 1);
  g.add_link(1, 2, net::Capacity{2.0}, 1);
  g.add_link(2, 3, net::Capacity{2.0}, 1);
  g.add_link(0, 4, net::Capacity{2.0}, 1);
  g.add_link(4, 3, net::Capacity{2.0}, 1);
  g.add_link(1, 5, net::Capacity{2.0}, 1);
  g.add_link(5, 3, net::Capacity{2.0}, 1);
  std::vector<net::UpdateInstance> flows;
  flows.push_back(net::UpdateInstance::from_paths(
      g, net::Path{0, 2, 3}, net::Path{0, 4, 3}, net::Demand{1.0}));
  flows.push_back(net::UpdateInstance::from_paths(
      g, net::Path{1, 2, 3}, net::Path{1, 5, 3}, net::Demand{1.0}));
  const auto plan = core::schedule_flows_jointly(flows);
  ASSERT_TRUE(plan.feasible()) << plan.message;

  Network network(g, kDelayUnit, kBpsPerUnit);
  EventQueue eq;
  util::Rng rng(61);
  Controller ctrl(eq, network, rng);

  std::vector<SimFlowSpec> specs(2);
  specs[0].name = "f0";
  specs[0].dst_prefix = "10.0.2.";
  specs[0].rate_bps = 500e6;
  specs[1].name = "f1";
  specs[1].src_prefix = "10.0.3.";
  specs[1].dst_prefix = "10.0.4.";
  specs[1].rate_bps = 500e6;
  for (std::size_t k = 0; k < flows.size(); ++k) {
    install_initial_rules(ctrl, flows[k], specs[k]);
  }

  const SimTime t0 = 2 * kSecond + 10 * kMillisecond;
  std::vector<UpdateRunResult> runs;
  for (std::size_t k = 0; k < flows.size(); ++k) {
    runs.push_back(run_timed_schedule(ctrl, flows[k], specs[k],
                                      plan.schedules[k], t0, kDelayUnit,
                                      /*confirm_with_barriers=*/false));
  }
  ctrl.flush();

  // Both flows' activations land in one overlapping wall-clock window.
  ASSERT_FALSE(runs[0].applied.empty());
  ASSERT_FALSE(runs[1].applied.empty());
  EXPECT_LE(std::abs(static_cast<long long>(
                runs[0].applied.begin()->second -
                runs[1].applied.begin()->second)),
            2 * kDelayUnit);

  std::vector<TrafficFlow> traffic;
  for (std::size_t k = 0; k < flows.size(); ++k) {
    traffic.push_back(flow_of(specs[k], flows[k].source()));
  }
  TraceOptions opts;
  opts.t_begin = 0;
  opts.t_end = 8 * kSecond;
  opts.quantum = 20 * kMillisecond;
  const TrafficReport rep = trace_traffic(network, traffic, opts);
  EXPECT_TRUE(rep.loops.empty());
  EXPECT_TRUE(rep.drops.empty());
  EXPECT_TRUE(rep.congestion.empty());

  // Both aggregates ended up on their bypasses.
  EXPECT_GT(network.link(*network.link_between(4, 3))
                .offered_bps.at(7 * kSecond),
            0.0);
  EXPECT_GT(network.link(*network.link_between(5, 3))
                .offered_bps.at(7 * kSecond),
            0.0);
}

// --- ResilientExecutor: bit-identical to the seed executors without faults.

TEST(ResilientExecutor, ZeroFaultChronusMatchesSeedExecutorExactly) {
  Bench seed(11);
  Controller seed_ctrl(seed.eq, seed.net, seed.rng, seed.model);
  install_initial_rules(seed_ctrl, seed.inst, seed.spec);
  const SimTime t0 = 2 * kSecond + 10 * kMillisecond;
  const UpdateRunResult want =
      run_chronus_update(seed_ctrl, seed.inst, seed.spec, t0, kDelayUnit);

  Bench b(11);
  Controller ctrl(b.eq, b.net, b.rng, b.model);
  // An attached injector with every knob at zero must change nothing.
  FaultInjector inj((FaultModel()));
  ctrl.attach_fault_injector(&inj);
  install_initial_rules(ctrl, b.inst, b.spec);
  ResilientExecutor exec(ctrl);
  const UpdateRunReport rep = exec.run_chronus(b.inst, b.spec, t0, kDelayUnit);

  EXPECT_TRUE(rep.completed);
  EXPECT_EQ(rep.fallback, UpdateRunReport::Fallback::kNone);
  EXPECT_EQ(rep.retries, 0);
  EXPECT_EQ(rep.faults.injected(), 0u);
  EXPECT_EQ(rep.result.applied, want.applied);
  EXPECT_EQ(rep.result.start, want.start);
  EXPECT_EQ(rep.result.finish, want.finish);
  EXPECT_EQ(rep.result.plan_status, want.plan_status);
  // The consistency monitor replays a clean run as the planned schedule.
  ASSERT_TRUE(rep.verified);
  EXPECT_TRUE(rep.verification.ok())
      << rep.verification.to_string(b.inst.graph());
}

TEST(ResilientExecutor, ZeroFaultOrMatchesSeedExecutorExactly) {
  Bench seed(7);
  Controller seed_ctrl(seed.eq, seed.net, seed.rng, seed.model);
  install_initial_rules(seed_ctrl, seed.inst, seed.spec);
  const UpdateRunResult want =
      run_or_update(seed_ctrl, seed.inst, seed.spec, kSecond);

  Bench b(7);
  Controller ctrl(b.eq, b.net, b.rng, b.model);
  install_initial_rules(ctrl, b.inst, b.spec);
  ResilientExecutor exec(ctrl);
  const UpdateRunReport rep = exec.run_or(b.inst, b.spec, kSecond, kDelayUnit);

  EXPECT_TRUE(rep.completed);
  EXPECT_EQ(rep.retries, 0);
  EXPECT_EQ(rep.result.applied, want.applied);
  EXPECT_EQ(rep.result.start, want.start);
  EXPECT_EQ(rep.result.finish, want.finish);
}

TEST(ResilientExecutor, ZeroFaultTwoPhaseMatchesSeedExecutorExactly) {
  Bench seed(21);
  Controller seed_ctrl(seed.eq, seed.net, seed.rng, seed.model);
  install_initial_rules(seed_ctrl, seed.inst, seed.spec, /*versioned=*/true);
  const UpdateRunResult want = run_two_phase_update(
      seed_ctrl, seed.inst, seed.spec, 2 * kSecond, 3 * kSecond);

  Bench b(21);
  Controller ctrl(b.eq, b.net, b.rng, b.model);
  install_initial_rules(ctrl, b.inst, b.spec, /*versioned=*/true);
  ResilientExecutor exec(ctrl);
  const UpdateRunReport rep =
      exec.run_two_phase(b.inst, b.spec, 2 * kSecond, 3 * kSecond, kDelayUnit);

  EXPECT_TRUE(rep.completed);
  EXPECT_EQ(rep.retries, 0);
  EXPECT_EQ(rep.result.applied, want.applied);
  EXPECT_EQ(rep.result.flip_time, want.flip_time);
  EXPECT_EQ(rep.result.start, want.start);
  EXPECT_EQ(rep.result.finish, want.finish);
  ASSERT_TRUE(rep.verified);
  EXPECT_TRUE(rep.verification.ok())
      << rep.verification.to_string(b.inst.graph());
}

// --- ResilientExecutor: recovery under the ISSUE's fault envelope
// (drops <= 10%, stragglers up to 10x) leaves zero post-hoc violations.

TEST(ResilientExecutor, RecoversFromDropsAndStragglers) {
  for (std::uint64_t seed = 301; seed <= 303; ++seed) {
    Bench b(seed);
    FaultModel m;
    m.drop_rate = 0.10;
    m.straggler_rate = 0.20;
    m.straggler_multiplier = 10.0;
    FaultInjector inj(m, /*seed=*/seed * 13);
    Controller ctrl(b.eq, b.net, b.rng, b.model);
    ctrl.attach_fault_injector(&inj);
    install_initial_rules(ctrl, b.inst, b.spec);

    RetryPolicy pol;
    pol.max_attempts = 5;
    ResilientExecutor exec(ctrl, pol);
    const SimTime t0 = 4 * kSecond + 10 * kMillisecond;
    const UpdateRunReport rep =
        exec.run_chronus(b.inst, b.spec, t0, kDelayUnit);

    EXPECT_TRUE(rep.completed) << "seed " << seed;
    EXPECT_EQ(rep.result.applied.size(), 5u) << "seed " << seed;
    ASSERT_TRUE(rep.verified);
    EXPECT_TRUE(rep.verification.ok())
        << "seed " << seed << ": "
        << rep.verification.to_string(b.inst.graph());
    // Full accounting: every drop of a planned mod forced a re-send.
    if (rep.faults.drops > 0) {
      EXPECT_GT(rep.retries, 0) << "seed " << seed;
    }
    EXPECT_EQ(rep.faults.drops + rep.faults.stragglers +
                  rep.faults.duplicates + rep.faults.reorders +
                  rep.faults.rejections + rep.faults.unresponsive_delays,
              rep.faults.injected());
    ctrl.flush();
    // The data plane agrees: the flow ends on p_fin and stays clean.
    TraceOptions opts;
    opts.t_begin = 0;
    opts.t_end = rep.result.finish + 5 * kSecond;
    opts.quantum = 20 * kMillisecond;
    const TrafficReport traffic =
        trace_traffic(b.net, {flow_of(b.spec, b.inst.source())}, opts);
    EXPECT_TRUE(traffic.loops.empty()) << "seed " << seed;
    EXPECT_TRUE(traffic.drops.empty()) << "seed " << seed;
  }
}

}  // namespace
}  // namespace chronus::sim
