// Fault-injection layer and self-healing executor: unit tests for the
// injector's fault modes as seen through the controller's ledger, the
// event queue's cancellation support (Time4 bundle discard), and the
// ResilientExecutor's degradation ladder (retry -> suffix re-plan ->
// two-phase overlay -> rollback) on the paper's Fig. 1 network.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "net/generators.hpp"
#include "sim/resilient_executor.hpp"
#include "util/contracts.hpp"

namespace chronus::sim {
namespace {

constexpr SimTime kDelayUnit = 200 * kMillisecond;  // one abstract time unit
constexpr double kBpsPerUnit = 500e6;

struct Bench {
  net::UpdateInstance inst = net::fig1_instance();
  Network net{inst.graph(), kDelayUnit, kBpsPerUnit};
  EventQueue eq;
  util::Rng rng;
  ControlChannelModel model;
  SimFlowSpec spec;

  explicit Bench(std::uint64_t seed) : rng(seed) {
    spec.rate_bps = 500e6;
  }
};

FlowMod add_mod(const FlowEntry& entry) {
  FlowMod mod;
  mod.type = FlowModType::kAdd;
  mod.entry = entry;
  return mod;
}

TEST(EventQueueCancel, TombstonesPendingEventsOnly) {
  EventQueue eq;
  std::vector<int> fired;
  const EventId a = eq.schedule_at(10, [&] { fired.push_back(1); });
  const EventId b = eq.schedule_at(20, [&] { fired.push_back(2); });
  eq.schedule_at(30, [&] { fired.push_back(3); });
  EXPECT_EQ(eq.pending(), 3u);
  EXPECT_EQ(eq.next_event_time(), 10);

  EXPECT_TRUE(eq.cancel(b));
  EXPECT_FALSE(eq.cancel(b));  // already cancelled
  EXPECT_EQ(eq.pending(), 2u);

  eq.run();
  EXPECT_EQ(fired, (std::vector<int>{1, 3}));
  EXPECT_FALSE(eq.cancel(a));  // already executed
  EXPECT_EQ(eq.next_event_time(), kNoEvent);
  EXPECT_TRUE(eq.empty());
}

TEST(EventQueueCancel, CancelledHeadDoesNotBlockNextEventTime) {
  EventQueue eq;
  int fired = 0;
  const EventId head = eq.schedule_at(5, [&] { ++fired; });
  eq.schedule_at(9, [&] { ++fired; });
  EXPECT_TRUE(eq.cancel(head));
  EXPECT_EQ(eq.next_event_time(), 9);
  eq.run();
  EXPECT_EQ(fired, 1);
}

TEST(ControllerFaults, OutOfRangeSwitchIdThrows) {
  Bench b(1);
  Controller ctrl(b.eq, b.net, b.rng, b.model);
  EXPECT_THROW(ctrl.barrier(99), std::out_of_range);
  EXPECT_THROW(ctrl.install_now(99, FlowEntry{}), std::out_of_range);
  EXPECT_THROW(ctrl.issue_flow_mod(99, FlowMod{}), std::out_of_range);
  EXPECT_THROW(ctrl.send_timed_flow_mod(99, FlowMod{}, kSecond),
               std::out_of_range);
}

TEST(FaultInjectorTest, SameSeedSameDecisionStream) {
  FaultModel m;
  m.drop_rate = 0.2;
  m.duplicate_rate = 0.1;
  m.reorder_rate = 0.1;
  m.reject_rate = 0.1;
  m.straggler_rate = 0.3;
  FaultInjector a(m, 99);
  FaultInjector c(m, 99);
  for (int i = 0; i < 200; ++i) {
    const auto da = a.on_flow_mod(static_cast<SwitchId>(i % 4));
    const auto dc = c.on_flow_mod(static_cast<SwitchId>(i % 4));
    EXPECT_EQ(da.drop, dc.drop);
    EXPECT_EQ(da.duplicate, dc.duplicate);
    EXPECT_EQ(da.reorder, dc.reorder);
    EXPECT_EQ(da.reject, dc.reject);
    EXPECT_EQ(da.straggler, dc.straggler);
  }
  EXPECT_EQ(a.stats().mods_seen, 200u);
  EXPECT_EQ(a.stats().drops, c.stats().drops);
  EXPECT_EQ(a.stats().stragglers, c.stats().stragglers);
  EXPECT_GT(a.stats().injected(), 0u);
}

TEST(FaultInjectorTest, AllZeroModelIsDisabled) {
  FaultModel m;
  EXPECT_FALSE(m.enabled());
  m.straggler_multiplier = 25.0;  // a multiplier alone injects nothing
  EXPECT_FALSE(m.enabled());
  m.drop_rate = 0.01;
  EXPECT_TRUE(m.enabled());
}

TEST(ControllerFaults, DroppedModIsRecordedButInvisibleToBarrier) {
  Bench b(2);
  FaultModel m;
  m.per_switch_drop[0] = 1.0;
  FaultInjector inj(m);
  Controller ctrl(b.eq, b.net, b.rng, b.model);
  ctrl.attach_fault_injector(&inj);

  const FlowEntry entry = make_forwarding_entry(b.spec, 1);
  const ModId id = ctrl.issue_flow_mod(0, add_mod(entry));
  EXPECT_TRUE(ctrl.record(id).dropped);
  EXPECT_TRUE(ctrl.record(id).faulted());
  EXPECT_FALSE(ctrl.record(id).installed());
  EXPECT_EQ(ctrl.record(id).applied, kNever);

  // The barrier completes without waiting for the lost mod...
  EXPECT_LT(ctrl.barrier(0), 30 * kSecond);
  ctrl.flush();
  // ...and the switch never saw it.
  EXPECT_EQ(b.net.sw(0).mods_applied(), 0u);
  EXPECT_FALSE(ctrl.active_action(0, entry.match, entry.priority).has_value());
  EXPECT_EQ(inj.stats().drops, 1u);
}

TEST(ControllerFaults, RejectionLeavesTableUntouched) {
  Bench b(3);
  FaultModel m;
  m.reject_rate = 1.0;
  FaultInjector inj(m);
  Controller ctrl(b.eq, b.net, b.rng, b.model);
  ctrl.attach_fault_injector(&inj);

  const FlowEntry entry = make_forwarding_entry(b.spec, 1);
  const ModId id = ctrl.issue_flow_mod(0, add_mod(entry));
  EXPECT_TRUE(ctrl.record(id).rejected);
  EXPECT_FALSE(ctrl.record(id).installed());
  ctrl.flush();
  EXPECT_EQ(b.net.sw(0).mods_applied(), 0u);
  EXPECT_EQ(b.net.sw(0).mods_rejected(), 1u);
  EXPECT_EQ(b.net.sw(0).table().size(), 0u);
  EXPECT_FALSE(ctrl.active_action(0, entry.match, entry.priority).has_value());
}

TEST(ControllerFaults, DuplicateAppliesTwice) {
  Bench b(4);
  FaultModel m;
  m.duplicate_rate = 1.0;
  FaultInjector inj(m);
  Controller ctrl(b.eq, b.net, b.rng, b.model);
  ctrl.attach_fault_injector(&inj);

  const FlowEntry entry = make_forwarding_entry(b.spec, 1);
  const ModId id = ctrl.issue_flow_mod(0, add_mod(entry));
  EXPECT_TRUE(ctrl.record(id).duplicated);
  ctrl.flush();
  EXPECT_EQ(b.net.sw(0).mods_applied(), 2u);
  // Idempotent: the table still holds exactly one copy of the entry.
  EXPECT_EQ(b.net.sw(0).table().size(), 1u);
}

TEST(ControllerFaults, ReorderedModEscapesTheFifo) {
  Bench b(5);
  FaultModel m;
  m.reorder_rate = 1.0;
  FaultInjector inj(m);
  Controller ctrl(b.eq, b.net, b.rng, b.model);
  ctrl.attach_fault_injector(&inj);

  // A timed mod parks the FIFO far in the future; a reordered async mod
  // slips past it instead of being clamped behind it.
  const FlowEntry entry = make_forwarding_entry(b.spec, 1);
  ctrl.issue_timed_flow_mod(0, add_mod(entry), 30 * kSecond);
  const ModId id = ctrl.issue_flow_mod(0, add_mod(entry));
  EXPECT_TRUE(ctrl.record(id).reordered);
  EXPECT_EQ(ctrl.record(id).applied, ctrl.record(id).arrival);
  EXPECT_LT(ctrl.record(id).applied, 30 * kSecond);
}

TEST(ControllerFaults, ForcedOutageDelaysArrivals) {
  Bench b(6);
  FaultModel m;
  m.forced_outage[0] = {0, 5 * kSecond};
  FaultInjector inj(m);
  Controller ctrl(b.eq, b.net, b.rng, b.model);
  ctrl.attach_fault_injector(&inj);

  const FlowEntry entry = make_forwarding_entry(b.spec, 1);
  const ModId id = ctrl.issue_flow_mod(0, add_mod(entry));
  EXPECT_TRUE(ctrl.record(id).delayed);
  EXPECT_GE(ctrl.record(id).arrival, 5 * kSecond);
  EXPECT_GE(ctrl.record(id).applied, 5 * kSecond);
  EXPECT_EQ(inj.stats().unresponsive_delays, 1u);
}

TEST(ControllerFaults, RecalledTimedModReleasesItsFifoSlot) {
  Bench b(7);
  Controller ctrl(b.eq, b.net, b.rng, b.model);
  const FlowEntry entry = make_forwarding_entry(b.spec, 1);
  const ModId id = ctrl.issue_timed_flow_mod(0, add_mod(entry), 30 * kSecond);
  ASSERT_TRUE(ctrl.cancel_mod(id));
  EXPECT_TRUE(ctrl.record(id).cancelled);
  EXPECT_FALSE(ctrl.cancel_mod(id));  // second recall is a no-op
  // The barrier is no longer clamped behind the recalled execution instant.
  EXPECT_LT(ctrl.barrier(0), 30 * kSecond);
  ctrl.flush();
  EXPECT_EQ(b.net.sw(0).mods_applied(), 0u);
  EXPECT_FALSE(ctrl.active_action(0, entry.match, entry.priority).has_value());
}

// --- The degradation ladder on Fig. 1.

TEST(ResilientLadder, RejectionBurstIsAbsorbedByInStepRetries) {
  Bench b(30);
  FaultModel m;
  m.reject_first_n[1] = 2;  // v2 refuses its first two installs
  FaultInjector inj(m);
  Controller ctrl(b.eq, b.net, b.rng, b.model);
  ctrl.attach_fault_injector(&inj);
  install_initial_rules(ctrl, b.inst, b.spec);

  ResilientExecutor exec(ctrl);  // max_attempts = 3 covers the burst
  const UpdateRunReport rep = exec.run_chronus(
      b.inst, b.spec, 2 * kSecond + 10 * kMillisecond, kDelayUnit);
  EXPECT_TRUE(rep.completed);
  EXPECT_EQ(rep.fallback, UpdateRunReport::Fallback::kNone);
  EXPECT_EQ(rep.replans, 0);
  EXPECT_EQ(rep.retries, 2);
  EXPECT_EQ(rep.faults.rejections, 2u);
  EXPECT_EQ(rep.result.applied.size(), 5u);
  ASSERT_TRUE(rep.verified);
}

TEST(ResilientLadder, RetryExhaustionTriggersSuffixReplan) {
  Bench b(31);
  FaultModel m;
  m.reject_first_n[4] = 2;  // v5 (the redirect switch) refuses twice
  FaultInjector inj(m);
  Controller ctrl(b.eq, b.net, b.rng, b.model);
  ctrl.attach_fault_injector(&inj);
  install_initial_rules(ctrl, b.inst, b.spec);

  RetryPolicy pol;
  pol.max_attempts = 2;  // timed send + one retry: the burst outlasts them
  ResilientExecutor exec(ctrl, pol);
  const UpdateRunReport rep = exec.run_chronus(
      b.inst, b.spec, 2 * kSecond + 10 * kMillisecond, kDelayUnit);
  EXPECT_TRUE(rep.completed);
  EXPECT_EQ(rep.fallback, UpdateRunReport::Fallback::kReplan);
  EXPECT_EQ(rep.replans, 1);
  EXPECT_FALSE(rep.rolled_back);
  EXPECT_EQ(rep.result.applied.size(), 5u);
  ASSERT_TRUE(rep.verified);
  EXPECT_TRUE(rep.verification.ok())
      << rep.verification.to_string(b.inst.graph());
  EXPECT_FALSE(rep.events.empty());
}

TEST(ResilientLadder, UnrecoverableSwitchFallsBackToTwoPhase) {
  Bench b(32);
  FaultModel m;
  m.reject_first_n[4] = 100;  // v5 never accepts an install
  FaultInjector inj(m);
  Controller ctrl(b.eq, b.net, b.rng, b.model);
  ctrl.attach_fault_injector(&inj);
  install_initial_rules(ctrl, b.inst, b.spec);

  RetryPolicy pol;
  pol.max_attempts = 2;
  pol.max_replans = 0;  // jump straight past the re-plan rung
  ResilientExecutor exec(ctrl, pol);
  const UpdateRunReport rep = exec.run_chronus(
      b.inst, b.spec, 2 * kSecond + 10 * kMillisecond, kDelayUnit);
  // v5 is a redirect helper off p_fin; the versioned overlay of p_fin does
  // not need it, so the two-phase rung completes the update.
  EXPECT_TRUE(rep.completed);
  EXPECT_EQ(rep.fallback, UpdateRunReport::Fallback::kTwoPhase);
  EXPECT_FALSE(rep.rolled_back);
  EXPECT_GT(rep.result.flip_time, 0);
  ASSERT_TRUE(rep.verified);
  EXPECT_TRUE(rep.verification.ok())
      << rep.verification.to_string(b.inst.graph());
  // The ingress now stamps the new version.
  const FlowEntry stamp = make_stamping_entry(
      b.spec, kNewVersion,
      ctrl.network().port_towards(b.inst.p_fin()[0], b.inst.p_fin()[1]));
  EXPECT_TRUE(ctrl.active_action(b.inst.source(), stamp.match, stamp.priority)
                  .has_value());
}

TEST(ResilientLadder, TotalFailureRollsBackCleanly) {
  Bench b(33);
  FaultModel m;
  m.per_switch_drop[1] = 1.0;  // v2 (on p_fin) drops every mod, forever
  FaultInjector inj(m);
  Controller ctrl(b.eq, b.net, b.rng, b.model);
  ctrl.attach_fault_injector(&inj);
  install_initial_rules(ctrl, b.inst, b.spec);

  RetryPolicy pol;
  pol.max_attempts = 2;
  pol.max_replans = 1;
  ResilientExecutor exec(ctrl, pol);
  const UpdateRunReport rep = exec.run_chronus(
      b.inst, b.spec, 2 * kSecond + 10 * kMillisecond, kDelayUnit);

  EXPECT_FALSE(rep.completed);
  EXPECT_TRUE(rep.rolled_back);
  EXPECT_TRUE(rep.rollback_clean);
  EXPECT_EQ(rep.fallback, UpdateRunReport::Fallback::kRollback);
  EXPECT_EQ(rep.replans, 1);
  EXPECT_GT(rep.faults.drops, 0u);
  EXPECT_FALSE(rep.events.empty());
  ctrl.flush();

  // The initial configuration survives: every p_init switch still forwards
  // to its old successor, and no overlay rules are left behind.
  const net::Path& init = b.inst.p_init();
  for (std::size_t i = 0; i + 1 < init.size(); ++i) {
    const FlowEntry old_rule = make_forwarding_entry(
        b.spec, ctrl.network().port_towards(init[i], init[i + 1]));
    const auto act =
        ctrl.active_action(init[i], old_rule.match, old_rule.priority);
    ASSERT_TRUE(act.has_value()) << "switch " << init[i];
    EXPECT_EQ(*act, old_rule.action) << "switch " << init[i];
  }
  EXPECT_EQ(b.net.sw(2).table().size(), 1u);  // v3: old rule only
  EXPECT_EQ(b.net.sw(3).table().size(), 1u);  // v4: old rule only
  EXPECT_EQ(b.net.sw(5).table().size(), 1u);  // v6: host rule only
}

// --- FaultModel contract validation (enforced by the injector ctor).

TEST(FaultModelValidate, AcceptsEveryDefaultAndSaneModel) {
  FaultModel m;
  EXPECT_NO_THROW(m.validate());
  m.drop_rate = 1.0;
  m.reject_rate = 0.0;
  m.per_switch_drop[3] = 0.5;
  m.reject_first_n[1] = 0;
  m.forced_outage[0] = {0, kSecond};
  EXPECT_NO_THROW(m.validate());
  EXPECT_NO_THROW(FaultInjector(m, 1));
}

TEST(FaultModelValidate, RejectsOutOfRangeRates) {
  FaultModel m;
  m.drop_rate = 1.5;
  EXPECT_THROW(m.validate(), util::ContractViolation);
  m.drop_rate = 0.0;
  m.reorder_rate = -0.1;
  EXPECT_THROW(m.validate(), util::ContractViolation);
  m.reorder_rate = 0.0;
  m.per_switch_drop[2] = 2.0;
  EXPECT_THROW(m.validate(), util::ContractViolation);
  // The injector refuses to be built on a malformed model.
  EXPECT_THROW(FaultInjector(m, 1), util::ContractViolation);
}

TEST(FaultModelValidate, RejectsNegativeCountsAndDurations) {
  FaultModel m;
  m.reject_first_n[0] = -1;
  EXPECT_THROW(m.validate(), util::ContractViolation);
  m.reject_first_n.clear();
  m.straggler_multiplier = -1.0;
  EXPECT_THROW(m.validate(), util::ContractViolation);
  m.straggler_multiplier = 10.0;
  m.unresponsive_duration = -kSecond;
  EXPECT_THROW(m.validate(), util::ContractViolation);
  m.unresponsive_duration = 0;
  m.clock_drift_stddev = -1;
  EXPECT_THROW(m.validate(), util::ContractViolation);
}

TEST(FaultModelValidate, RejectsIllOrderedOutageWindows) {
  FaultModel m;
  m.forced_outage[0] = {kSecond, kSecond};  // empty window
  EXPECT_THROW(m.validate(), util::ContractViolation);
  m.forced_outage[0] = {2 * kSecond, kSecond};  // inverted
  EXPECT_THROW(m.validate(), util::ContractViolation);
  m.forced_outage[0] = {-1, kSecond};  // negative start
  EXPECT_THROW(m.validate(), util::ContractViolation);
}

// --- Edge cases of the fault modes in combination.

TEST(ControllerFaults, OverlappingOutageWindowsDelayEachSwitch) {
  Bench b(11);
  FaultModel m;
  // Overlapping windows on different switches: each arrival is shaped by
  // its own switch's window only.
  m.forced_outage[0] = {0, 5 * kSecond};
  m.forced_outage[1] = {0, 3 * kSecond};
  FaultInjector inj(m);
  Controller ctrl(b.eq, b.net, b.rng, b.model);
  ctrl.attach_fault_injector(&inj);

  const FlowEntry entry = make_forwarding_entry(b.spec, 1);
  const ModId on0 = ctrl.issue_flow_mod(0, add_mod(entry));
  const ModId on1 = ctrl.issue_flow_mod(1, add_mod(entry));
  EXPECT_GE(ctrl.record(on0).arrival, 5 * kSecond);
  EXPECT_GE(ctrl.record(on1).arrival, 3 * kSecond);
  EXPECT_LT(ctrl.record(on1).arrival, 5 * kSecond);
  EXPECT_EQ(inj.stats().unresponsive_delays, 2u);
}

TEST(ControllerFaults, PerSwitchDropOverridesZeroGlobalRate) {
  Bench b(12);
  FaultModel m;
  m.drop_rate = 0.0;          // globally lossless...
  m.per_switch_drop[0] = 1.0; // ...except switch 0, which loses everything
  FaultInjector inj(m);
  Controller ctrl(b.eq, b.net, b.rng, b.model);
  ctrl.attach_fault_injector(&inj);

  const FlowEntry entry = make_forwarding_entry(b.spec, 1);
  const ModId lost = ctrl.issue_flow_mod(0, add_mod(entry));
  const ModId kept = ctrl.issue_flow_mod(1, add_mod(entry));
  EXPECT_TRUE(ctrl.record(lost).dropped);
  EXPECT_FALSE(ctrl.record(kept).dropped);
  ctrl.flush();
  EXPECT_EQ(b.net.sw(0).mods_applied(), 0u);
  EXPECT_EQ(b.net.sw(1).mods_applied(), 1u);
  EXPECT_EQ(inj.stats().drops, 1u);
}

TEST(FaultInjectorTest, RejectFirstNInterleavesWithRejectRate) {
  FaultModel m;
  m.reject_first_n[0] = 2;  // deterministic: first two mods to switch 0
  m.reject_rate = 1.0;      // then the rate takes over (here: always)
  FaultInjector inj(m, 5);
  // The counter is consumed before the rate is drawn, so the first two
  // rejections cost no randomness; every verdict is still a rejection.
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(inj.on_flow_mod(0).reject) << "mod " << i;
  }
  EXPECT_EQ(inj.stats().rejections, 4u);

  // With the rate at zero only the counted rejections remain.
  FaultModel counted;
  counted.reject_first_n[0] = 2;
  FaultInjector only_counter(counted, 5);
  EXPECT_TRUE(only_counter.on_flow_mod(0).reject);
  EXPECT_TRUE(only_counter.on_flow_mod(0).reject);
  EXPECT_FALSE(only_counter.on_flow_mod(0).reject);
  EXPECT_FALSE(only_counter.on_flow_mod(1).reject);  // other switches unscathed
  EXPECT_EQ(only_counter.stats().rejections, 2u);
}

TEST(FaultInjectorTest, MixedModelReplaysBitIdenticallyUnderFixedSeed) {
  FaultModel m;
  m.drop_rate = 0.1;
  m.per_switch_drop[1] = 0.9;
  m.reject_first_n[2] = 3;
  m.reject_rate = 0.2;
  m.straggler_rate = 0.25;
  m.unresponsive_rate = 0.05;
  m.unresponsive_duration = kSecond;
  m.forced_outage[0] = {kSecond, 2 * kSecond};
  m.clock_drift_stddev = 300;

  const auto drive = [&m](std::uint64_t seed) {
    FaultInjector inj(m, seed);
    std::vector<std::uint64_t> fates;
    for (int i = 0; i < 300; ++i) {
      const SwitchId sw = static_cast<SwitchId>(i % 4);
      const auto d = inj.on_flow_mod(sw);
      fates.push_back((d.drop ? 1u : 0u) | (d.duplicate ? 2u : 0u) |
                      (d.reorder ? 4u : 0u) | (d.reject ? 8u : 0u) |
                      (d.straggler ? 16u : 0u));
      fates.push_back(static_cast<std::uint64_t>(
          inj.shape_arrival(sw, i * 10 * kMillisecond)));
      fates.push_back(static_cast<std::uint64_t>(
          inj.shape_latency(5 * kMillisecond)));
      fates.push_back(static_cast<std::uint64_t>(inj.clock_drift(sw)));
    }
    fates.push_back(inj.stats().injected());
    return fates;
  };
  EXPECT_EQ(drive(77), drive(77));
  EXPECT_NE(drive(77), drive(78));  // and the seed actually matters
}

}  // namespace
}  // namespace chronus::sim
