// Tests for Algorithm 1 (the tree feasibility check), including the
// Theorem 2 cross-validation: on identical-delay instances the check must
// agree with the exact OPT solver's feasibility verdict.
#include <gtest/gtest.h>

#include "core/feasibility_tree.hpp"
#include "core/greedy_scheduler.hpp"
#include "net/generators.hpp"
#include "opt/mutp_bnb.hpp"
#include "timenet/verifier.hpp"

namespace chronus::core {
namespace {

using net::Path;

TEST(FeasibilityTree, Fig1IsFeasibleWithWitness) {
  const auto inst = net::fig1_instance();
  const FeasibilityResult res = tree_feasibility_check(inst);
  ASSERT_TRUE(res.feasible) << res.message;
  // The witness is a real congestion- and loop-free schedule.
  EXPECT_EQ(res.witness.size(), 5u);
  EXPECT_TRUE(timenet::verify_transition(inst, res.witness).ok());
}

TEST(FeasibilityTree, OvertakingIsInfeasible) {
  net::Graph g;
  g.add_nodes(4);
  g.add_link(0, 1, net::Capacity{1.0}, 2);
  g.add_link(1, 2, net::Capacity{1.0}, 2);
  g.add_link(2, 3, net::Capacity{1.0}, 2);
  g.add_link(0, 2, net::Capacity{1.0}, 1);
  const auto inst =
      net::UpdateInstance::from_paths(g, Path{0, 1, 2, 3}, Path{0, 2, 3}, net::Demand{1.0});
  const FeasibilityResult res = tree_feasibility_check(inst);
  EXPECT_FALSE(res.feasible);
  EXPECT_EQ(res.failed_switch, 0u);  // the source cannot ever be moved
}

TEST(FeasibilityTree, NothingToUpdateIsFeasible) {
  net::Graph g = net::line_topology(3, net::Capacity{1.0}, 1);
  const auto inst =
      net::UpdateInstance::from_paths(g, Path{0, 1, 2}, Path{0, 1, 2}, net::Demand{1.0});
  EXPECT_TRUE(tree_feasibility_check(inst).feasible);
}

// Theorem 2 claims the crossing sweep decides feasibility exactly under
// identical link delays. Our cross-validation against the exact OPT solver
// found rare identical-delay instances where *any* fixed crossing order is
// trapped (the safe-now move forecloses a later switch whose only safe
// window required simultaneity or a different order — e.g. seeds 501/503
// of the random generator). The check is therefore sound (never claims
// feasibility without a verified witness, and never misses an infeasible
// instance) but can be conservative; this sweep pins both properties and
// bounds the false-negative rate.
class TreeVsOpt : public ::testing::TestWithParam<int> {};

TEST_P(TreeVsOpt, SoundAndRarelyConservativeOnIdenticalDelays) {
  util::Rng rng(500 + GetParam());
  net::RandomInstanceOptions opt;
  opt.n = 7;
  opt.delay_min = 1;
  opt.delay_max = 1;  // identical delays: Theorem 2's precondition
  int checked = 0;
  int false_negatives = 0;
  for (int i = 0; i < 10; ++i) {
    const auto inst = net::random_instance(opt, rng);
    const FeasibilityResult tree = tree_feasibility_check(inst);
    const opt::MutpResult exact = opt::solve_mutp(inst);
    if (exact.timed_out) continue;  // verdict not authoritative
    ++checked;
    if (tree.feasible) {
      // Soundness: a `true` verdict always carries a verified witness and
      // must agree with OPT.
      EXPECT_TRUE(exact.feasible());
      EXPECT_TRUE(timenet::verify_transition(inst, tree.witness).ok());
    } else if (exact.feasible()) {
      ++false_negatives;
    }
  }
  ASSERT_GT(checked, 0);
  EXPECT_LE(false_negatives * 100, checked * 15)
      << false_negatives << "/" << checked << " conservative verdicts";
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreeVsOpt, ::testing::Range(0, 5));

TEST(FeasibilityTree, NeverFalselyClaimsFeasibility) {
  // On heterogeneous delays the check may be conservative but a `true`
  // verdict must always come with a verified witness.
  util::Rng rng(601);
  net::RandomInstanceOptions opt;
  opt.n = 9;
  opt.delay_min = 1;
  opt.delay_max = 3;
  for (int i = 0; i < 30; ++i) {
    const auto inst = net::random_instance(opt, rng);
    const FeasibilityResult res = tree_feasibility_check(inst);
    if (res.feasible) {
      EXPECT_TRUE(timenet::verify_transition(inst, res.witness).ok());
    }
  }
}

}  // namespace
}  // namespace chronus::core
