// Cross-cutting property tests: invariants that must hold across random
// instances, validating the model (shift/scaling invariance), the safety
// characterizations (union graph vs exhaustive interleavings), and the
// relationships between the schedulers.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>

#include "baselines/order_replacement.hpp"
#include "core/feasibility_tree.hpp"
#include "core/greedy_scheduler.hpp"
#include "core/heuristics.hpp"
#include "net/generators.hpp"
#include "net/topologies.hpp"
#include "obs/metrics.hpp"
#include "opt/mutp_bnb.hpp"
#include "opt/order_bnb.hpp"
#include "timenet/verifier.hpp"

namespace chronus {
namespace {

using net::NodeId;
using timenet::TimePoint;
using timenet::UpdateSchedule;

class PropertySweep : public ::testing::TestWithParam<int> {
 protected:
  util::Rng rng_{800 + static_cast<std::uint64_t>(GetParam())};
};

INSTANTIATE_TEST_SUITE_P(Seeds, PropertySweep, ::testing::Range(0, 5));

TEST_P(PropertySweep, VerifierIsShiftInvariant) {
  // The initial steady state extends infinitely into the past, so shifting
  // every update time by a constant must preserve the verdict exactly.
  net::RandomInstanceOptions opt;
  opt.n = 8;
  for (int i = 0; i < 5; ++i) {
    const auto inst = net::random_instance(opt, rng_);
    UpdateSchedule sched;
    TimePoint t{};
    for (const NodeId v : inst.switches_to_update()) {
      sched.set(v, t);
      t += rng_.uniform_int(0, 2);
    }
    const auto base = timenet::verify_transition(inst, sched);
    for (const std::int64_t shift : {-7, 13, 1000}) {
      UpdateSchedule shifted;
      for (const auto& [v, tv] : sched.entries()) shifted.set(v, tv + shift);
      const auto moved = timenet::verify_transition(inst, shifted);
      EXPECT_EQ(base.ok(), moved.ok());
      EXPECT_EQ(base.congested_link_count(), moved.congested_link_count());
      EXPECT_EQ(base.loops.size(), moved.loops.size());
    }
  }
}

TEST_P(PropertySweep, VerdictInvariantUnderUniformScaling) {
  // Multiplying demand and every capacity by the same factor changes
  // nothing: the model is homogeneous in rate units.
  net::RandomInstanceOptions opt;
  opt.n = 8;
  for (int i = 0; i < 5; ++i) {
    auto inst = net::random_instance(opt, rng_);
    core::GreedyOptions gopts;
    gopts.record_steps = false;
    const auto plan = core::greedy_schedule(inst, gopts);

    net::Graph scaled = inst.graph();
    for (net::LinkId id = 0; id < scaled.link_count(); ++id) {
      scaled.mutable_link(id).capacity = scaled.link(id).capacity * 250.0;
    }
    auto big = net::UpdateInstance::from_paths(scaled, inst.p_init(),
                                               inst.p_fin(), net::Demand{250.0});
    const auto plan_big = core::greedy_schedule(big, gopts);
    EXPECT_EQ(plan.status, plan_big.status);
    if (plan.feasible()) {
      EXPECT_EQ(plan.schedule, plan_big.schedule);
    }
  }
}

TEST_P(PropertySweep, GreedyFeasibleImpliesTreeFeasible) {
  // tree_feasibility_check falls back to the greedy, so it can never claim
  // less than the greedy proves.
  net::RandomInstanceOptions opt;
  opt.n = 10;
  for (int i = 0; i < 5; ++i) {
    const auto inst = net::random_instance(opt, rng_);
    core::GreedyOptions gopts;
    gopts.record_steps = false;
    if (core::greedy_schedule(inst, gopts).feasible()) {
      EXPECT_TRUE(core::tree_feasibility_check(inst).feasible);
    }
  }
}

TEST_P(PropertySweep, UnionGraphMatchesExhaustiveInterleavings) {
  // round_is_loop_safe(U, S) must equal: "every subset X of S, applied on
  // top of U, yields an acyclic forwarding graph" (all reachable
  // intermediate configurations of an asynchronous round).
  net::RandomInstanceOptions opt;
  opt.n = 7;
  for (int i = 0; i < 5; ++i) {
    const auto inst = net::random_instance(opt, rng_);
    auto to_update = inst.switches_to_update();
    if (to_update.size() > 6) to_update.resize(6);
    const std::set<NodeId> round(to_update.begin(), to_update.end());

    const auto acyclic_config = [&](const std::set<NodeId>& updated) {
      // Follow next-hops from every node; a cycle exists iff some walk
      // revisits a node before reaching a sink.
      for (const NodeId start : inst.touched_nodes()) {
        std::set<NodeId> seen;
        NodeId at = start;
        while (true) {
          if (!seen.insert(at).second) return false;
          const auto next = updated.count(at) ? inst.new_next(at)
                                              : inst.old_next(at);
          if (!next) break;
          at = *next;
        }
      }
      return true;
    };

    bool exhaustive_safe = true;
    const auto items = std::vector<NodeId>(round.begin(), round.end());
    for (std::size_t mask = 0; mask < (1u << items.size()); ++mask) {
      std::set<NodeId> updated;
      for (std::size_t b = 0; b < items.size(); ++b) {
        if (mask & (1u << b)) updated.insert(items[b]);
      }
      if (!acyclic_config(updated)) {
        exhaustive_safe = false;
        break;
      }
    }
    EXPECT_EQ(opt::round_is_loop_safe(inst, {}, round), exhaustive_safe)
        << "instance " << i;
  }
}

TEST_P(PropertySweep, TwoPhaseNeverLoopsOrBlackholes) {
  // Per-packet consistency: every class follows one whole (simple) path.
  net::RandomInstanceOptions opt;
  opt.n = 10;
  for (int i = 0; i < 5; ++i) {
    const auto inst = net::random_instance(opt, rng_);
    UpdateSchedule empty;
    timenet::FlowTransition ft;
    ft.instance = &inst;
    ft.schedule = &empty;
    ft.per_packet_flip = timenet::TimePoint{rng_.uniform_int(-5, 5)};
    const auto report = timenet::verify_transitions({ft});
    EXPECT_TRUE(report.loop_free());
    EXPECT_TRUE(report.blackhole_free());
  }
}

TEST_P(PropertySweep, DijkstraMatchesBruteForceOnSmallGraphs) {
  net::WaxmanOptions wopt;
  wopt.n = 7;
  const net::Graph g = net::waxman(wopt, rng_);
  // Brute force: enumerate all simple paths (graph is tiny).
  const auto brute = [&](NodeId src, NodeId dst) {
    net::Delay best = -1;
    std::vector<NodeId> stack{src};
    std::set<NodeId> seen{src};
    std::function<void(net::Delay)> go = [&](net::Delay acc) {
      const NodeId at = stack.back();
      if (at == dst) {
        if (best < 0 || acc < best) best = acc;
        return;
      }
      for (const net::LinkId id : g.out_links(at)) {
        const net::Link& l = g.link(id);
        if (!seen.insert(l.dst).second) continue;
        stack.push_back(l.dst);
        go(acc + l.delay);
        stack.pop_back();
        seen.erase(l.dst);
      }
    };
    go(0);
    return best;
  };
  for (int i = 0; i < 5; ++i) {
    const NodeId src = static_cast<NodeId>(rng_.index(g.node_count()));
    NodeId dst = src;
    while (dst == src) dst = static_cast<NodeId>(rng_.index(g.node_count()));
    const auto p = net::shortest_path(g, src, dst);
    const net::Delay expect = brute(src, dst);
    if (expect < 0) {
      EXPECT_FALSE(p.has_value());
    } else {
      ASSERT_TRUE(p.has_value());
      EXPECT_EQ(net::path_delay(g, *p), expect);
    }
  }
}

TEST_P(PropertySweep, MetricsBackedSchedulerDifferential) {
  // Metric-backed differentials over random instances: where the exact
  // solver proves optimality and the guarded greedy also succeeds, the
  // greedy makespan can never beat OPT; and on the metrics surface the
  // B&B can never record more incumbent improvements than nodes it
  // visited (each improvement happens at a leaf of a visited node).
  net::RandomInstanceOptions opt;
  opt.n = 8;
  for (int i = 0; i < 4; ++i) {
    const auto inst = net::random_instance(opt, rng_);
    obs::MetricsRegistry reg;
    obs::MetricsSnapshot snap;
    opt::MutpResult exact;
    core::ScheduleResult greedy;
    {
      const obs::ScopedMetrics scope(reg);
      exact = opt::solve_mutp(inst);
      greedy = core::greedy_schedule(inst, {});
      snap = reg.snapshot();
    }
    EXPECT_EQ(snap.counters.at("mutp.calls"), 1u);
    EXPECT_GE(snap.counters.at("mutp.nodes_visited"),
              snap.counters.at("mutp.incumbent_updates"));
    if (exact.feasible() && exact.proved_optimal && greedy.feasible()) {
      EXPECT_LE(exact.makespan, greedy.schedule.step_span());
    }
  }
}

TEST_P(PropertySweep, ProvedOptimalBoundsEveryHeuristic) {
  net::RandomInstanceOptions opt;
  opt.n = 8;
  for (int i = 0; i < 4; ++i) {
    const auto inst = net::random_instance(opt, rng_);
    const auto exact = opt::solve_mutp(inst);
    if (!exact.feasible() || !exact.proved_optimal) continue;
    const auto chain = core::chain_priority_schedule(inst);
    if (chain.feasible()) {
      EXPECT_LE(exact.makespan, chain.schedule.step_span());
    }
    util::Rng seeds = rng_.fork(static_cast<std::uint64_t>(i));
    const auto restart = core::randomized_restart_schedule(inst, seeds);
    if (restart.feasible()) {
      EXPECT_LE(exact.makespan, restart.schedule.step_span());
    }
  }
}

TEST_P(PropertySweep, OrRealizationsRespectPlannedRounds) {
  net::RandomInstanceOptions opt;
  opt.n = 9;
  for (int i = 0; i < 5; ++i) {
    const auto inst = net::random_instance(opt, rng_);
    opt::OrderResult plan;
    const auto exec =
        baselines::plan_and_execute_order_replacement(inst, rng_, {}, {}, &plan);
    ASSERT_TRUE(plan.feasible);
    // Realized activation times are strictly ordered across rounds.
    TimePoint prev_round_max{-1};
    for (const auto& round : plan.rounds) {
      TimePoint lo = std::numeric_limits<TimePoint>::max();
      TimePoint hi = std::numeric_limits<TimePoint>::min();
      for (const NodeId v : round) {
        lo = std::min(lo, *exec.realized.at(v));
        hi = std::max(hi, *exec.realized.at(v));
      }
      EXPECT_GT(lo, prev_round_max);
      prev_round_max = hi;
    }
  }
}

}  // namespace
}  // namespace chronus
