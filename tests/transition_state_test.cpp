// Tests for the incremental transition verifier: every verdict must agree
// with the from-scratch exact verifier, across random probe sequences and
// undo/redo patterns (the branch-and-bound usage).
#include <gtest/gtest.h>

#include "net/generators.hpp"
#include "timenet/transition_state.hpp"
#include "timenet/verifier.hpp"

namespace chronus::timenet {
namespace {

using net::NodeId;

bool full_verify_ok(const net::UpdateInstance& inst,
                    const UpdateSchedule& sched) {
  VerifyOptions vo;
  vo.first_violation_only = true;
  return verify_transition(inst, sched, vo).ok();
}

TEST(TransitionStateT, AcceptsThePaperSchedule) {
  const auto inst = net::fig1_instance();
  TransitionState state(inst);
  EXPECT_TRUE(state.try_update(1, timenet::TimePoint{0}));  // v2@t0
  EXPECT_TRUE(state.try_update(2, timenet::TimePoint{1}));  // v3@t1
  EXPECT_TRUE(state.try_update(0, timenet::TimePoint{2}));  // v1@t2
  EXPECT_TRUE(state.try_update(3, timenet::TimePoint{2}));  // v4@t2
  EXPECT_TRUE(state.try_update(4, timenet::TimePoint{3}));  // v5@t3
  EXPECT_EQ(state.depth(), 5u);
  EXPECT_TRUE(full_verify_ok(inst, state.schedule()));
}

TEST(TransitionStateT, RejectsTheKnownBadMoves) {
  const auto inst = net::fig1_instance();
  TransitionState state(inst);
  ASSERT_TRUE(state.try_update(1, timenet::TimePoint{0}));   // v2@t0
  EXPECT_FALSE(state.try_update(2, timenet::TimePoint{0}));  // v3@t0 revisits v2
  EXPECT_EQ(state.depth(), 1u);
  ASSERT_TRUE(state.try_update(2, timenet::TimePoint{1}));   // v3@t1 fine
  EXPECT_FALSE(state.try_update(3, timenet::TimePoint{1}));  // v4@t1 loops (the paper's example)
  EXPECT_TRUE(state.try_update(3, timenet::TimePoint{2}));   // v4@t2 fine
}

TEST(TransitionStateT, RejectionLeavesStateUnchanged) {
  const auto inst = net::fig1_instance();
  TransitionState state(inst);
  ASSERT_TRUE(state.try_update(1, timenet::TimePoint{0}));
  const UpdateSchedule before = state.schedule();
  ASSERT_FALSE(state.try_update(2, timenet::TimePoint{0}));
  EXPECT_EQ(state.schedule(), before);
  // The exact same continuation still works.
  EXPECT_TRUE(state.try_update(2, timenet::TimePoint{1}));
}

TEST(TransitionStateT, UndoRestoresPreviousDecisions) {
  const auto inst = net::fig1_instance();
  TransitionState state(inst);
  ASSERT_TRUE(state.try_update(1, timenet::TimePoint{0}));
  ASSERT_TRUE(state.try_update(2, timenet::TimePoint{1}));
  state.undo();
  EXPECT_EQ(state.depth(), 1u);
  // v3@t0 is still invalid, v3@t1 still valid: undo is exact.
  EXPECT_FALSE(state.try_update(2, timenet::TimePoint{0}));
  EXPECT_TRUE(state.try_update(2, timenet::TimePoint{1}));
}

TEST(TransitionStateT, ThrowsOnMisuse) {
  const auto inst = net::fig1_instance();
  TransitionState state(inst);
  EXPECT_THROW(state.undo(), std::logic_error);
  ASSERT_TRUE(state.try_update(1, timenet::TimePoint{0}));
  EXPECT_THROW(state.try_update(1, timenet::TimePoint{5}), std::logic_error);
}

// Property: on random instances and random probe sequences, every verdict
// agrees with the from-scratch verifier, including after undos.
class StateVsVerifier : public ::testing::TestWithParam<int> {};

TEST_P(StateVsVerifier, VerdictsMatchFullVerification) {
  util::Rng rng(700 + GetParam());
  net::RandomInstanceOptions opt;
  opt.n = 8;
  for (int rep = 0; rep < 8; ++rep) {
    const auto inst = net::random_instance(opt, rng);
    TransitionState state(inst);
    UpdateSchedule applied;
    timenet::TimePoint t{};
    auto to_update = inst.switches_to_update();
    rng.shuffle(to_update);
    for (const NodeId v : to_update) {
      t += rng.uniform_int(0, 2);
      UpdateSchedule tentative = applied;
      tentative.set(v, t);
      const bool expect_ok = full_verify_ok(inst, tentative);
      const bool got_ok = state.try_update(v, t);
      ASSERT_EQ(got_ok, expect_ok)
          << "switch " << inst.graph().name(v) << " at t=" << t;
      if (got_ok) {
        applied = tentative;
        // Occasionally exercise undo + re-apply.
        if (rng.chance(0.3)) {
          state.undo();
          ASSERT_TRUE(state.try_update(v, t));
        }
      }
    }
    EXPECT_EQ(state.schedule(), applied);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StateVsVerifier, ::testing::Range(0, 6));

// Multi-flow: verdicts must agree with verify_transitions over the joint
// loads of all flows, including cross-flow collisions and undo patterns.
class MultiStateVsVerifier : public ::testing::TestWithParam<int> {};

TEST_P(MultiStateVsVerifier, JointVerdictsMatchFullVerification) {
  util::Rng rng(900 + static_cast<std::uint64_t>(GetParam()));
  for (int rep = 0; rep < 4; ++rep) {
    // Two flows over one shared graph: build from a single random instance
    // and a reversed-role sibling so their paths interleave.
    net::RandomInstanceOptions opt;
    opt.n = 7;
    const auto base = net::random_instance(opt, rng);
    const net::Graph& g = base.graph();
    // Flow 1: rides the base instance's final path permanently (a static
    // competitor), moving from p_fin to p_fin-with-no-change is not an
    // update, so give it the reverse assignment: init = p_fin, fin = p_init
    // only when both directions exist; otherwise skip the rep.
    if (!net::path_exists_in(g, base.p_fin()) ||
        !net::path_exists_in(g, base.p_init())) {
      continue;
    }
    const auto sibling = net::UpdateInstance::from_paths(
        g, base.p_fin(), base.p_init(), base.demand());

    std::vector<const net::UpdateInstance*> flows{&base, &sibling};
    TransitionState state(flows);
    if (!state.initial_state_valid()) continue;  // paths overlap too much

    UpdateSchedule applied[2];
    timenet::TimePoint t{};
    for (int step = 0; step < 10; ++step) {
      const std::size_t f = rng.index(2);
      const auto to_update = flows[f]->switches_to_update();
      if (to_update.empty()) continue;
      const net::NodeId v = to_update[rng.index(to_update.size())];
      if (applied[f].contains(v)) continue;
      t += rng.uniform_int(0, 2);

      UpdateSchedule tentative = applied[f];
      tentative.set(v, t);
      FlowTransition ft0{&base, f == 0 ? &tentative : &applied[0], {}};
      FlowTransition ft1{&sibling, f == 1 ? &tentative : &applied[1], {}};
      VerifyOptions vo;
      vo.first_violation_only = true;
      const bool expect_ok = verify_transitions({ft0, ft1}, vo).ok();
      const bool got_ok = state.try_update(f, v, t);
      ASSERT_EQ(got_ok, expect_ok)
          << "flow " << f << " switch " << g.name(v) << " at t=" << t;
      if (got_ok) {
        applied[f] = tentative;
        if (rng.chance(0.25)) {
          state.undo();
          ASSERT_TRUE(state.try_update(f, v, t));
        }
      }
    }
    EXPECT_EQ(state.schedule(0), applied[0]);
    EXPECT_EQ(state.schedule(1), applied[1]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultiStateVsVerifier, ::testing::Range(0, 4));

TEST(TransitionStateT, InitialValidityDetectsOverload) {
  net::Graph g;
  g.add_nodes(3);
  g.add_link(0, 2, net::Capacity{1.5}, 1);
  g.add_link(1, 2, net::Capacity{1.0}, 1);
  const auto f0 =
      net::UpdateInstance::from_paths(g, net::Path{0, 2}, net::Path{0, 2}, net::Demand{1.0});
  const auto f1 =
      net::UpdateInstance::from_paths(g, net::Path{0, 2}, net::Path{0, 2}, net::Demand{1.0});
  TransitionState both({&f0, &f1});
  EXPECT_FALSE(both.initial_state_valid());  // 2.0 > 1.5 on link 0->2
  TransitionState one(f0);
  EXPECT_TRUE(one.initial_state_valid());
}

TEST(TransitionStateT, DeepUndoToEmpty) {
  const auto inst = net::fig1_instance();
  TransitionState state(inst);
  ASSERT_TRUE(state.try_update(1, timenet::TimePoint{0}));
  ASSERT_TRUE(state.try_update(2, timenet::TimePoint{1}));
  ASSERT_TRUE(state.try_update(0, timenet::TimePoint{2}));
  state.undo();
  state.undo();
  state.undo();
  EXPECT_EQ(state.depth(), 0u);
  EXPECT_TRUE(state.schedule().empty());
  // A fresh start from empty works.
  EXPECT_TRUE(state.try_update(1, timenet::TimePoint{0}));
}

}  // namespace
}  // namespace chronus::timenet
