// Tests for the invariant firewall: the contract macros themselves, the
// preconditions seeded through the library, and the unit-safe strong types.
#include <gtest/gtest.h>

#include <functional>
#include <limits>
#include <sstream>

#include "service/capacity_ledger.hpp"
#include "timenet/schedule.hpp"
#include "timenet/transition_state.hpp"
#include "net/generators.hpp"
#include "util/contracts.hpp"
#include "util/stats.hpp"
#include "util/strong_types.hpp"

namespace chronus {
namespace {

using timenet::TimePoint;
using util::Capacity;
using util::ContractViolation;
using util::Demand;
using util::TimeStep;

// ---------------------------------------------------------------------------
// The macro machinery itself.

TEST(ContractMacros, PassingContractsAreSilent) {
  EXPECT_NO_THROW(CHRONUS_EXPECTS(1 + 1 == 2));
  EXPECT_NO_THROW(CHRONUS_ENSURES(true, "never shown"));
  EXPECT_NO_THROW(CHRONUS_INVARIANT(2 > 1));
}

#if CHRONUS_CONTRACT_LEVEL >= 1
TEST(ContractMacros, ViolationCarriesKindExprAndLocation) {
  try {
    CHRONUS_EXPECTS(1 > 2, "math still works");
    FAIL() << "violation did not throw";
  } catch (const ContractViolation& e) {
    EXPECT_STREQ(e.kind(), "precondition");
    EXPECT_STREQ(e.expr(), "1 > 2");
    EXPECT_NE(std::string(e.file()).find("contracts_test"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("math still works"),
              std::string::npos);
  }
}

TEST(ContractMacros, ViolationIsALogicError) {
  // Pre-contract call sites that throw std::logic_error keep working when
  // converted: the violation type is a subclass.
  EXPECT_THROW(CHRONUS_INVARIANT(false), std::logic_error);
}

TEST(ContractMacros, MessageOnlyEvaluatedOnFailure) {
  int evaluations = 0;
  const auto message = [&] {
    ++evaluations;
    return std::string("boom");
  };
  CHRONUS_EXPECTS(true, message());
  EXPECT_EQ(evaluations, 0);
  EXPECT_THROW(CHRONUS_EXPECTS(false, message()), ContractViolation);
  EXPECT_EQ(evaluations, 1);
}

// ---------------------------------------------------------------------------
// Seeded preconditions across the library (the firewall in action). These
// only fire at contract level >= 1, which is the default build.

TEST(SeededContracts, EmptyScheduleFirstTimeViolates) {
  const timenet::UpdateSchedule empty;
  EXPECT_THROW(empty.first_time(), ContractViolation);
}

TEST(SeededContracts, EmptyScheduleLastTimeViolates) {
  const timenet::UpdateSchedule empty;
  EXPECT_THROW(empty.last_time(), ContractViolation);
}

TEST(SeededContracts, NegativeTransitionFootprintDemandViolates) {
  const auto inst = net::fig1_instance();
  EXPECT_THROW(service::transition_footprint(inst.graph(), inst.p_init(),
                                             inst.p_fin(), Demand{-1.0}),
               ContractViolation);
}

TEST(SeededContracts, TryUpdateOnUnknownFlowViolates) {
  const auto inst = net::fig1_instance();
  timenet::TransitionState state(inst);
  EXPECT_THROW(state.try_update(7, 0, TimePoint{0}), ContractViolation);
}

TEST(SeededContracts, TryUpdateOnNodeOutsideGraphViolates) {
  const auto inst = net::fig1_instance();
  timenet::TransitionState state(inst);
  EXPECT_THROW(state.try_update(0, 999, TimePoint{0}), ContractViolation);
}

TEST(SeededContracts, SummaryPercentileRangeViolates) {
  util::Summary s;
  s.add(1.0);
  EXPECT_THROW(s.percentile(-1.0), ContractViolation);
  EXPECT_THROW(s.percentile(101.0), ContractViolation);
}

TEST(SeededContracts, LedgerOverReleaseStillThrowsLogicError) {
  // The ledger keeps its documented std::logic_error for over-release; the
  // ENSURES added alongside must not change that behavior.
  service::CapacityLedger ledger(net::fig1_instance().graph());
  service::Footprint fp{{0, Demand{0.5}}};
  ASSERT_TRUE(ledger.try_reserve(fp));
  ledger.release(fp);
  EXPECT_THROW(ledger.release(fp), std::logic_error);
}
#endif  // CHRONUS_CONTRACT_LEVEL >= 1

// ---------------------------------------------------------------------------
// Strong types: the arithmetic that must work, and the representation
// guarantees the rollout relies on.

TEST(StrongTypes, TimeStepPointAndDurationAlgebra) {
  TimeStep t{5};
  EXPECT_EQ((t + 3).count(), 8);
  EXPECT_EQ((3 + t).count(), 8);
  EXPECT_EQ((t - 2).count(), 3);
  EXPECT_EQ(TimeStep{9} - t, 4);  // point - point -> duration
  t += 10;
  EXPECT_EQ(t.count(), 15);
  t -= 5;
  EXPECT_EQ(t.count(), 10);
  EXPECT_EQ((++t).count(), 11);
  EXPECT_EQ((t++).count(), 11);
  EXPECT_EQ(t.count(), 12);
  EXPECT_LT(TimeStep{1}, TimeStep{2});
}

TEST(StrongTypes, DemandArithmetic) {
  const Demand a{2.0};
  const Demand b{0.5};
  EXPECT_DOUBLE_EQ((a + b).value(), 2.5);
  EXPECT_DOUBLE_EQ((a - b).value(), 1.5);
  EXPECT_DOUBLE_EQ((a * 3.0).value(), 6.0);
  EXPECT_DOUBLE_EQ((0.5 * a).value(), 1.0);
  EXPECT_DOUBLE_EQ((a / 4.0).value(), 0.5);
  EXPECT_DOUBLE_EQ(a / b, 4.0);  // ratio is dimensionless
  EXPECT_DOUBLE_EQ((-b).value(), -0.5);
}

TEST(StrongTypes, CapacityChargesAndRefundsDemand) {
  Capacity c{10.0};
  const Demand d{4.0};
  EXPECT_DOUBLE_EQ((c - d).value(), 6.0);
  EXPECT_DOUBLE_EQ((c + d).value(), 14.0);
  c -= d;
  EXPECT_DOUBLE_EQ(c.value(), 6.0);
  c += d;
  EXPECT_DOUBLE_EQ(c.value(), 10.0);
  EXPECT_DOUBLE_EQ(d / c, 0.4);  // utilization
  EXPECT_TRUE(d <= c);
  EXPECT_TRUE(c > d);
  EXPECT_FALSE(Demand{11.0} <= c);
}

TEST(StrongTypes, ExplicitAxisCrossings) {
  const Capacity headroom{3.0};
  EXPECT_DOUBLE_EQ(headroom.as_demand().value(), 3.0);
  EXPECT_DOUBLE_EQ(util::capacity_for(Demand{2.0}, 1.5).value(), 3.0);
}

TEST(StrongTypes, NumericLimitsAreExtremeNotZero) {
  // The primary std::numeric_limits template silently value-initializes for
  // unspecialized types; these must forward the representation's limits.
  EXPECT_EQ(std::numeric_limits<TimeStep>::max().count(),
            std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(std::numeric_limits<TimeStep>::min().count(),
            std::numeric_limits<std::int64_t>::min());
  EXPECT_GT(std::numeric_limits<Demand>::max().value(), 1e300);
  EXPECT_LT(std::numeric_limits<Demand>::lowest().value(), -1e300);
  EXPECT_GT(std::numeric_limits<Capacity>::max().value(), 1e300);
  EXPECT_LT(std::numeric_limits<Capacity>::lowest().value(), -1e300);
}

TEST(StrongTypes, StreamsAndHash) {
  std::ostringstream os;
  os << TimeStep{7} << " " << Demand{1.5} << " " << Capacity{2.5};
  EXPECT_EQ(os.str(), "7 1.5 2.5");
  EXPECT_EQ(std::hash<TimeStep>{}(TimeStep{42}),
            std::hash<TimeStep>{}(TimeStep{42}));
}

}  // namespace
}  // namespace chronus
