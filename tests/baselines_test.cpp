// Tests for the OR executor (asynchronous round realization) and the TP
// two-phase baseline (rule accounting and per-packet safety/vulnerability).
#include <gtest/gtest.h>

#include "baselines/order_replacement.hpp"
#include "baselines/two_phase.hpp"
#include "net/generators.hpp"
#include "timenet/verifier.hpp"

namespace chronus::baselines {
namespace {

using net::NodeId;
using net::Path;

TEST(OrExecution, RespectsRoundBarriers) {
  const auto inst = net::fig1_instance();
  util::Rng rng(41);
  opt::OrderResult plan;
  const OrExecution exec =
      plan_and_execute_order_replacement(inst, rng, {}, {}, &plan);
  ASSERT_TRUE(plan.feasible);
  ASSERT_EQ(exec.round_starts.size(), plan.rounds.size());
  // Every activation of round r happens before round r+1 starts.
  for (std::size_t r = 0; r + 1 < plan.rounds.size(); ++r) {
    for (const NodeId v : plan.rounds[r]) {
      EXPECT_LT(*exec.realized.at(v), exec.round_starts[r + 1]);
      EXPECT_GE(*exec.realized.at(v), exec.round_starts[r]);
    }
  }
  EXPECT_EQ(exec.realized.size(), 5u);
}

TEST(OrExecution, LatencyBoundsHold) {
  const auto inst = net::fig1_instance();
  util::Rng rng(42);
  OrExecutionOptions opts;
  opts.max_latency = 7;
  opt::OrderResult plan;
  const OrExecution exec =
      plan_and_execute_order_replacement(inst, rng, opts, {}, &plan);
  for (std::size_t r = 0; r < plan.rounds.size(); ++r) {
    for (const NodeId v : plan.rounds[r]) {
      EXPECT_LE(*exec.realized.at(v), exec.round_starts[r] + 7);
    }
  }
}

TEST(OrExecution, DifferentSeedsGiveDifferentInterleavings) {
  const auto inst = net::fig1_instance();
  util::Rng a(1), b(2);
  const auto ea = plan_and_execute_order_replacement(inst, a);
  const auto eb = plan_and_execute_order_replacement(inst, b);
  EXPECT_NE(ea.realized, eb.realized);
}

TEST(OrExecution, CapacityObliviousRealizationsCanCongest) {
  // Across several seeds, at least one asynchronous realization of the
  // round-minimal OR plan on Fig. 1 violates congestion- or loop-freedom
  // in the strict dynamic-flow sense — the phenomenon Figs. 6-8 measure.
  const auto inst = net::fig1_instance();
  int violations = 0;
  for (int seed = 0; seed < 10; ++seed) {
    util::Rng rng(100 + seed);
    const auto exec = plan_and_execute_order_replacement(inst, rng);
    const auto report = timenet::verify_transition(inst, exec.realized);
    violations += !report.ok();
  }
  EXPECT_GT(violations, 0);
}

TEST(TwoPhase, RuleAccountingShape) {
  const auto inst = net::fig1_instance();
  TwoPhaseOptions opts;
  opts.flows = 10;
  opts.hosts = 6;
  const TwoPhaseReport rep = two_phase_update(inst, opts);
  // p_init has 5 rule-bearing switches, p_fin has 4.
  EXPECT_EQ(rep.table_rules_steady, 10u * 5 + 2u * 6);
  EXPECT_EQ(rep.table_rules_peak, 10u * 9 + 4u * 6);
  EXPECT_EQ(rep.rules_touched_tp, 10u * 9 + 2u * 6);
  EXPECT_EQ(rep.rules_touched_chronus, 10u * 5);
  EXPECT_GT(rep.table_rules_peak, rep.table_rules_steady);
}

TEST(TwoPhase, ChronusSavesSubstantially) {
  // The headline Fig. 9 claim: Chronus saves well over half of the rule
  // operations on random instances.
  util::Rng rng(43);
  net::RandomInstanceOptions opt;
  opt.n = 30;
  double tp = 0;
  double chronus = 0;
  for (int i = 0; i < 50; ++i) {
    const auto inst = net::random_instance(opt, rng);
    const TwoPhaseReport rep = two_phase_update(inst);
    tp += static_cast<double>(rep.rules_touched_tp);
    chronus += static_cast<double>(rep.rules_touched_chronus);
  }
  EXPECT_LT(chronus, 0.4 * tp);
}

TEST(TwoPhase, DefaultHostsTrackSwitchCount) {
  const auto inst = net::fig1_instance();
  const TwoPhaseReport rep = two_phase_update(inst);
  // hosts defaults to node_count = 6.
  EXPECT_EQ(rep.table_rules_steady, 10u * 5 + 2u * 6);
}

TEST(TwoPhase, VulnerableLinksAreSharedTightLinks) {
  // Fig. 1's paths share no directed link: TP is fully safe there.
  EXPECT_TRUE(two_phase_update(net::fig1_instance()).vulnerable_links.empty());

  // Shared tight tail link b->t: flagged.
  net::Graph g;
  g.add_nodes(4);
  g.add_link(0, 1, net::Capacity{1.0}, 1);
  g.add_link(1, 2, net::Capacity{1.0}, 1);
  g.add_link(2, 3, net::Capacity{1.0}, 1);
  g.add_link(0, 2, net::Capacity{1.0}, 1);
  const auto inst =
      net::UpdateInstance::from_paths(g, Path{0, 1, 2, 3}, Path{0, 2, 3}, net::Demand{1.0});
  const TwoPhaseReport rep = two_phase_update(inst);
  ASSERT_EQ(rep.vulnerable_links.size(), 1u);
  const net::Link& l = g.link(rep.vulnerable_links[0]);
  EXPECT_EQ(l.src, 2u);
  EXPECT_EQ(l.dst, 3u);
}

TEST(TwoPhase, AsScheduleReplaysPerPacket) {
  const auto inst = net::fig1_instance();
  const TwoPhaseReport rep = two_phase_update(inst);
  timenet::FlowTransition ft;
  ft.instance = &inst;
  ft.schedule = &rep.as_schedule;
  ft.per_packet_flip = rep.flip_time;
  // Per-packet consistency on disjoint paths: clean.
  EXPECT_TRUE(timenet::verify_transitions({ft}).ok());
}

}  // namespace
}  // namespace chronus::baselines
