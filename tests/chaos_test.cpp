// The chaos soak engine and the graceful-degradation ladder: scenario
// parsing and round-tripping, the pure-arithmetic compilation of phases
// into FaultModels (flap windows, skew ramps, surge stacking), and the
// end-to-end determinism contracts — a quiet campaign is bit-identical to
// a clean serve run, and a nonzero campaign replayed from its seed
// reproduces the identical degradation-mode sequence and logical metrics
// slice.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "io/scenario_io.hpp"
#include "obs/metrics.hpp"
#include "service/service.hpp"
#include "service/workload.hpp"
#include "sim/chaos.hpp"
#include "util/contracts.hpp"

namespace chronus::sim {
namespace {

ChaosScenario parse(const std::string& text) {
  std::istringstream in(text);
  return io::read_scenario(in);
}

// --- Scenario text format.

TEST(ScenarioIo, ParsesAFullScript) {
  const ChaosScenario s = parse(
      "# comment\n"
      "scenario storm seed=7\n"
      "fault drop=0.01 straggler=0.05 straggler_mult=8\n"
      "phase burst from=2s until=6s drop=0.05 reject=0.02 surge=2.5\n"
      "flap sw=3 period=500ms down=100ms offset=50ms\n"
      "outage sw=1 from=3s until=4s\n"
      "phase ramp from=6s until=10s skew_begin=100 skew_end=2ms\n");
  EXPECT_EQ(s.name, "storm");
  EXPECT_EQ(s.seed, 7u);
  EXPECT_DOUBLE_EQ(s.base.drop_rate, 0.01);
  EXPECT_DOUBLE_EQ(s.base.straggler_multiplier, 8.0);
  ASSERT_EQ(s.phases.size(), 2u);
  const ChaosPhase& burst = s.phases[0];
  EXPECT_EQ(burst.from, 2 * kSecond);
  EXPECT_EQ(burst.until, 6 * kSecond);
  EXPECT_DOUBLE_EQ(burst.arrival_surge, 2.5);
  ASSERT_EQ(burst.flaps.size(), 1u);
  EXPECT_EQ(burst.flaps[0].sw, 3u);
  EXPECT_EQ(burst.flaps[0].period, 500 * kMillisecond);
  EXPECT_EQ(burst.flaps[0].down, 100 * kMillisecond);
  EXPECT_EQ(burst.flaps[0].offset, 50 * kMillisecond);
  ASSERT_EQ(burst.outages.size(), 1u);
  EXPECT_EQ(burst.outages[0].sw, 1u);
  EXPECT_EQ(burst.outages[0].from, 3 * kSecond);
  const ChaosPhase& ramp = s.phases[1];
  EXPECT_EQ(ramp.skew_begin, 100);
  EXPECT_EQ(ramp.skew_end, 2 * kMillisecond);
  EXPECT_EQ(s.horizon(), 10 * kSecond);
  EXPECT_FALSE(s.quiet());
}

TEST(ScenarioIo, RoundTrips) {
  const std::string text =
      "scenario storm seed=7\n"
      "fault drop=0.01 straggler=0.05 straggler_mult=8\n"
      "phase burst from=0 until=3000000 drop=0.08 reject=0.05 surge=2\n"
      "flap sw=2 period=400000 down=80000\n"
      "outage sw=5 from=1000000 until=1500000\n"
      "phase tail from=3000000 until=6000000 straggler=0.15"
      " straggler_mult=12 skew_begin=100 skew_end=500\n";
  const ChaosScenario once = parse(text);
  std::ostringstream out;
  io::write_scenario(out, once);
  const ChaosScenario twice = parse(out.str());
  std::ostringstream again;
  io::write_scenario(again, twice);
  EXPECT_EQ(out.str(), again.str());
  EXPECT_EQ(twice.phases.size(), once.phases.size());
  EXPECT_DOUBLE_EQ(twice.base.drop_rate, once.base.drop_rate);
  EXPECT_EQ(twice.phases[0].flaps[0].period, 400 * kMillisecond);
}

TEST(ScenarioIo, RejectsMalformedScriptsWithLineNumbers) {
  const auto fails_with = [](const std::string& text, const std::string& at) {
    try {
      parse(text);
      ADD_FAILURE() << "expected parse failure for: " << text;
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find(at), std::string::npos)
          << e.what();
    }
  };
  fails_with("fault drop=0.5\n", "line 1");          // before the header
  fails_with("scenario a\nscenario b\n", "line 2");  // duplicate header
  fails_with("scenario a\nbogus x=1\n", "unknown directive");
  fails_with("scenario a\nphase p until=1s\n", "from=");
  fails_with("scenario a\nphase p from=0 until=1s drop=abc\n", "bad number");
  fails_with("scenario a\nphase p from=0 until=1s wat=1\n",
             "unknown phase attribute");
  fails_with("scenario a\nflap sw=1 period=1s down=1s\n", "before any phase");
  fails_with("scenario a\noutage sw=1 from=0 until=1s\n", "before any phase");
  fails_with("scenario a\nphase p from=0 until=1s drop=0.1 until=2x\n",
             "bad number");
  // Structurally fine but semantically invalid: caught by validate().
  EXPECT_THROW(parse("scenario a\nphase p from=2s until=1s\n"),
               util::ContractViolation);
  EXPECT_THROW(parse("scenario a\nphase p from=0 until=1s drop=1.5\n"),
               util::ContractViolation);
  EXPECT_THROW(
      parse("scenario a\nphase p from=0 until=1s\nflap sw=1 period=1s "
            "down=2s\n"),
      util::ContractViolation);
  EXPECT_THROW(parse("scenario a\nphase p from=0 until=1s surge=0\n"),
               util::ContractViolation);
}

// --- Compilation: pure arithmetic from phases to FaultModels.

TEST(ChaosCompile, QuietScenarioCompilesToDisabledModels) {
  const ChaosScenario s = parse(
      "scenario calm\n"
      "phase idle from=0 until=10s\n");
  EXPECT_TRUE(s.quiet());
  for (SimTime t = 0; t <= 12 * kSecond; t += kSecond) {
    EXPECT_FALSE(s.fault_model_at(t, kSecond).enabled()) << "t=" << t;
    EXPECT_DOUBLE_EQ(s.arrival_multiplier_at(t), 1.0);
  }
}

TEST(ChaosCompile, RatesMaxMergeAcrossBaseAndActivePhases) {
  ChaosScenario s;
  s.base.drop_rate = 0.05;
  ChaosPhase weak;
  weak.name = "weak";
  weak.from = 0;
  weak.until = 10 * kSecond;
  weak.drop_rate = 0.02;  // below the floor: floor wins
  weak.reject_rate = 0.3;
  ChaosPhase strong;
  strong.name = "strong";
  strong.from = 5 * kSecond;
  strong.until = 10 * kSecond;
  strong.drop_rate = 0.2;  // above the floor: phase wins
  s.phases = {weak, strong};
  s.validate();

  const FaultModel early = s.fault_model_at(kSecond, kSecond);
  EXPECT_DOUBLE_EQ(early.drop_rate, 0.05);
  EXPECT_DOUBLE_EQ(early.reject_rate, 0.3);
  const FaultModel late = s.fault_model_at(6 * kSecond, kSecond);
  EXPECT_DOUBLE_EQ(late.drop_rate, 0.2);
  // Outside every phase the floor remains.
  const FaultModel after = s.fault_model_at(11 * kSecond, kSecond);
  EXPECT_DOUBLE_EQ(after.drop_rate, 0.05);
  EXPECT_DOUBLE_EQ(after.reject_rate, 0.0);
}

TEST(ChaosCompile, SkewRampInterpolatesLinearly) {
  const ChaosScenario s = parse(
      "scenario ramp\n"
      "phase r from=1000 until=2000 skew_begin=100 skew_end=200\n");
  EXPECT_EQ(s.fault_model_at(1000, 100).clock_drift_stddev, 100);
  EXPECT_EQ(s.fault_model_at(1500, 100).clock_drift_stddev, 150);
  EXPECT_EQ(s.fault_model_at(1999, 100).clock_drift_stddev, 199);
  // Outside the window the ramp contributes nothing.
  EXPECT_EQ(s.fault_model_at(2000, 100).clock_drift_stddev, 0);
  EXPECT_EQ(s.fault_model_at(999, 0).clock_drift_stddev, 0);
}

TEST(ChaosCompile, SurgesStackMultiplicatively) {
  const ChaosScenario s = parse(
      "scenario surge\n"
      "phase a from=0 until=4s surge=2\n"
      "phase b from=2s until=6s surge=3\n");
  EXPECT_DOUBLE_EQ(s.arrival_multiplier_at(kSecond), 2.0);
  EXPECT_DOUBLE_EQ(s.arrival_multiplier_at(3 * kSecond), 6.0);
  EXPECT_DOUBLE_EQ(s.arrival_multiplier_at(5 * kSecond), 3.0);
  EXPECT_DOUBLE_EQ(s.arrival_multiplier_at(7 * kSecond), 1.0);
}

TEST(ChaosCompile, OutagesTranslateIntoThePrivateTimeBase) {
  const ChaosScenario s = parse(
      "scenario o\n"
      "phase p from=0 until=10s\n"
      "outage sw=4 from=1s until=5s\n");
  // Admitted at 2s with a 1s span: the outage covers the whole span.
  const FaultModel mid = s.fault_model_at(2 * kSecond, kSecond);
  ASSERT_EQ(mid.forced_outage.count(4), 1u);
  EXPECT_EQ(mid.forced_outage.at(4).first, 0);
  EXPECT_EQ(mid.forced_outage.at(4).second, kSecond);
  // Admitted before the outage: the window starts mid-span.
  const FaultModel before = s.fault_model_at(0, 2 * kSecond);
  EXPECT_EQ(before.forced_outage.at(4).first, kSecond);
  EXPECT_EQ(before.forced_outage.at(4).second, 2 * kSecond);
  // Admitted after it ended: nothing to see.
  const FaultModel after = s.fault_model_at(6 * kSecond, kSecond);
  EXPECT_EQ(after.forced_outage.count(4), 0u);
}

TEST(ChaosCompile, FlapContributesItsFirstDownWindowInTheSpan) {
  const ChaosScenario s = parse(
      "scenario f\n"
      "phase p from=0 until=10s\n"
      "flap sw=2 period=1s down=200ms\n");
  // Cycles: [0,200ms), [1s,1.2s), [2s,2.2s), ...
  // Admitted at 2.5s: the next down window is [3s,3.2s) -> [500ms,700ms)
  // in the private base.
  const FaultModel m = s.fault_model_at(2500 * kMillisecond, kSecond);
  ASSERT_EQ(m.forced_outage.count(2), 1u);
  EXPECT_EQ(m.forced_outage.at(2).first, 500 * kMillisecond);
  EXPECT_EQ(m.forced_outage.at(2).second, 700 * kMillisecond);
  // Admitted inside a down window: that window itself is clipped in.
  const FaultModel in = s.fault_model_at(2100 * kMillisecond, kSecond);
  EXPECT_EQ(in.forced_outage.at(2).first, 0);
  EXPECT_EQ(in.forced_outage.at(2).second, 100 * kMillisecond);
  // A span past the phase end sees no window.
  const FaultModel out = s.fault_model_at(9900 * kMillisecond, 50);
  EXPECT_EQ(out.forced_outage.count(2), 0u);
}

TEST(ChaosCompile, OverlappingWindowsOnOneSwitchMergeToTheirHull) {
  const ChaosScenario s = parse(
      "scenario h\n"
      "phase p from=0 until=10s\n"
      "outage sw=1 from=1s until=2s\n"
      "outage sw=1 from=1500ms until=3s\n");
  const FaultModel m = s.fault_model_at(0, 5 * kSecond);
  ASSERT_EQ(m.forced_outage.count(1), 1u);
  EXPECT_EQ(m.forced_outage.at(1).first, kSecond);
  EXPECT_EQ(m.forced_outage.at(1).second, 3 * kSecond);
}

// --- The degradation policy contract.

TEST(DegradationPolicy, ValidatesThresholdOrdering) {
  service::DegradationPolicy p;
  EXPECT_FALSE(p.enabled());
  EXPECT_NO_THROW(p.validate());
  p.greedy_enter = 4;
  p.greedy_exit = 2;
  p.defer_enter = 8;
  p.defer_exit = 4;
  EXPECT_TRUE(p.enabled());
  EXPECT_NO_THROW(p.validate());
  p.greedy_exit = 4;  // exit must sit strictly below enter
  EXPECT_THROW(p.validate(), util::ContractViolation);
  p.greedy_exit = 2;
  p.defer_enter = 2;  // rungs out of order
  EXPECT_THROW(p.validate(), util::ContractViolation);
}

// --- End-to-end campaigns over the generated workload.

service::WorkloadOptions small_workload() {
  service::WorkloadOptions w;
  w.requests = 16;
  w.arrival_rate_hz = 40.0;
  w.pairs = 4;
  w.conflict_density = 0.4;
  w.seed = 11;
  return w;
}

service::ServiceOptions fast_service() {
  service::ServiceOptions o;
  o.workers = 2;
  o.seed = 11;
  return o;
}

struct CampaignResult {
  service::ServiceReport report;
  obs::MetricsSnapshot logical;
};

CampaignResult run_campaign(const service::WorkloadOptions& wopt,
                            const service::ServiceOptions& sopt) {
  const service::ServiceTrace trace = service::make_workload(wopt);
  obs::MetricsRegistry reg;
  CampaignResult out;
  {
    const obs::ScopedMetrics scoped(reg);
    service::UpdateService svc(trace.graph, sopt);
    out.report = svc.run(trace);
  }
  out.logical = reg.snapshot().logical();
  return out;
}

TEST(ChaosCampaign, QuietCampaignIsBitIdenticalToCleanRun) {
  const ChaosScenario quiet = parse(
      "scenario quiet\n"
      "phase idle from=0 until=30s\n");
  ASSERT_TRUE(quiet.quiet());

  service::WorkloadOptions wopt = small_workload();
  service::ServiceOptions sopt = fast_service();
  const CampaignResult clean = run_campaign(wopt, sopt);

  wopt.chaos = &quiet;
  sopt.chaos = &quiet;
  const CampaignResult quieted = run_campaign(wopt, sopt);

  EXPECT_EQ(clean.report.digest(), quieted.report.digest());
  EXPECT_TRUE(clean.logical == quieted.logical);
  EXPECT_TRUE(quieted.report.health_log.empty());
  EXPECT_EQ(quieted.report.faults_injected, 0u);
}

TEST(ChaosCampaign, NonzeroCampaignReplaysBitIdentically) {
  const ChaosScenario storm = parse(
      "scenario storm seed=9\n"
      "fault drop=0.02\n"
      "phase burst from=0 until=2s drop=0.06 reject=0.05 surge=2\n"
      "flap sw=2 period=400ms down=80ms\n"
      "phase tail from=2s until=5s straggler=0.1 straggler_mult=4\n");

  service::WorkloadOptions wopt = small_workload();
  wopt.chaos = &storm;
  service::ServiceOptions sopt = fast_service();
  sopt.chaos = &storm;
  sopt.degradation.latency_slo = 30 * kSecond;
  sopt.degradation.greedy_enter = 5;
  sopt.degradation.greedy_exit = 2;
  sopt.degradation.defer_enter = 8;
  sopt.degradation.defer_exit = 4;

  const CampaignResult once = run_campaign(wopt, sopt);
  const CampaignResult twice = run_campaign(wopt, sopt);
  EXPECT_EQ(once.report.digest(), twice.report.digest());
  EXPECT_TRUE(once.logical == twice.logical);
  ASSERT_EQ(once.report.health_log.size(), twice.report.health_log.size());
  for (std::size_t i = 0; i < once.report.health_log.size(); ++i) {
    EXPECT_EQ(once.report.health_log[i], twice.report.health_log[i]) << i;
  }
  // The campaign actually bit: faults were injected and recorded.
  EXPECT_GT(once.report.faults_injected, 0u);
  EXPECT_EQ(once.report.violations, 0);

  // Worker count must not leak into the outcome, faults included.
  service::ServiceOptions wide = sopt;
  wide.workers = 7;
  const CampaignResult other = run_campaign(wopt, wide);
  EXPECT_EQ(once.report.digest(), other.report.digest());
  EXPECT_TRUE(once.logical == other.logical);
}

TEST(ChaosCampaign, SurgeCompressesArrivalsDeterministically) {
  const ChaosScenario surge = parse(
      "scenario surge\n"
      "phase rush from=0 until=60s surge=4\n");
  service::WorkloadOptions wopt = small_workload();
  const service::ServiceTrace calm = service::make_workload(wopt);
  wopt.chaos = &surge;
  const service::ServiceTrace rushed = service::make_workload(wopt);
  const service::ServiceTrace rushed2 = service::make_workload(wopt);
  ASSERT_EQ(calm.requests.size(), rushed.requests.size());
  // Same seed, same draws: the surged trace replays exactly...
  for (std::size_t i = 0; i < rushed.requests.size(); ++i) {
    EXPECT_EQ(rushed.requests[i].arrival, rushed2.requests[i].arrival);
  }
  // ...and compresses time: the surged span is well under the calm one.
  EXPECT_LT(rushed.requests.back().arrival * 3,
            calm.requests.back().arrival);
}

// --- The ladder under pressure (no chaos required).

TEST(DegradationLadder, EscalatesShedsAndRecoversWithHysteresis) {
  // A burst far above the service rate: every request lands in epoch one.
  service::WorkloadOptions wopt = small_workload();
  wopt.requests = 24;
  wopt.arrival_rate_hz = 2000.0;
  wopt.conflict_density = 1.0;  // all contested: the queue must build
  service::ServiceOptions sopt = fast_service();
  sopt.degradation.greedy_enter = 4;
  sopt.degradation.greedy_exit = 2;
  sopt.degradation.defer_enter = 8;
  sopt.degradation.defer_exit = 4;
  sopt.degradation.shed_enter = 12;
  sopt.degradation.shed_exit = 6;

  obs::MetricsRegistry reg;
  service::ServiceReport report;
  {
    const obs::ScopedMetrics scoped(reg);
    const service::ServiceTrace trace = service::make_workload(wopt);
    service::UpdateService svc(trace.graph, sopt);
    report = svc.run(trace);
  }

  // The ladder walked: straight to shed on the burst, back down afterwards.
  ASSERT_FALSE(report.health_log.empty());
  EXPECT_EQ(report.health_log.front().second,
            service::DegradationMode::kShed);
  EXPECT_EQ(report.health_log.back().second,
            service::DegradationMode::kFull);
  // De-escalation is one rung per epoch: adjacent transitions differ by
  // exactly one rung on the way down.
  for (std::size_t i = 1; i < report.health_log.size(); ++i) {
    const int prev = static_cast<int>(report.health_log[i - 1].second);
    const int next = static_cast<int>(report.health_log[i].second);
    if (next < prev) {
      EXPECT_EQ(prev - next, 1) << "transition " << i;
    }
  }

  // Shedding actually happened, down to the exit threshold, and every
  // shed record carries the mode it was decided under.
  EXPECT_GT(report.shed, 0u);
  std::size_t shed_records = 0;
  for (const auto& rec : report.records) {
    if (rec.status == service::RequestStatus::kShedOverload) {
      ++shed_records;
      EXPECT_EQ(rec.degradation, service::DegradationMode::kShed);
    }
  }
  EXPECT_EQ(shed_records, report.shed);

  const obs::MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("service.shed"), report.shed);
  EXPECT_EQ(snap.counters.at("service.health_transitions"),
            report.health_log.size());
  EXPECT_GT(snap.counters.at("service.degraded_epochs"), 0u);
  // Everyone is accounted for: nothing stays pending behind the ladder.
  for (const auto& rec : report.records) {
    EXPECT_NE(rec.status, service::RequestStatus::kPending) << rec.id;
  }
}

TEST(DegradationLadder, WatchdogCancelsRequestsPastTheSlo) {
  service::WorkloadOptions wopt = small_workload();
  wopt.requests = 20;
  wopt.arrival_rate_hz = 2000.0;
  wopt.conflict_density = 1.0;
  wopt.deadline = 0;  // no admission deadline: the watchdog is on its own
  service::ServiceOptions sopt = fast_service();
  sopt.degradation.latency_slo = 800 * kMillisecond;

  obs::MetricsRegistry reg;
  service::ServiceReport report;
  {
    const obs::ScopedMetrics scoped(reg);
    const service::ServiceTrace trace = service::make_workload(wopt);
    service::UpdateService svc(trace.graph, sopt);
    report = svc.run(trace);
  }

  EXPECT_GT(report.watchdog_cancelled, 0u);
  for (const auto& rec : report.records) {
    if (rec.status == service::RequestStatus::kWatchdogTimeout) {
      // Cancelled strictly after the SLO elapsed, by the dispatcher.
      EXPECT_GT(rec.completed - rec.arrival, sopt.degradation.latency_slo);
    }
    EXPECT_NE(rec.status, service::RequestStatus::kPending) << rec.id;
  }
  const obs::MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("service.watchdog_fires"),
            report.watchdog_cancelled);

  // The same overload replays bit-identically, watchdog included.
  obs::MetricsRegistry reg2;
  service::ServiceReport again;
  {
    const obs::ScopedMetrics scoped(reg2);
    const service::ServiceTrace trace = service::make_workload(wopt);
    service::UpdateService svc(trace.graph, sopt);
    again = svc.run(trace);
  }
  EXPECT_EQ(report.digest(), again.digest());
  EXPECT_TRUE(reg.snapshot().logical() == reg2.snapshot().logical());
}

TEST(DegradationLadder, DisabledLadderLeavesTheDigestFormatUnchanged) {
  // A clean run's digest must not mention ladder fields at all — the
  // pre-ladder golden digests stay valid.
  const CampaignResult clean =
      run_campaign(small_workload(), fast_service());
  EXPECT_EQ(clean.report.digest().find("health|"), std::string::npos);
  EXPECT_EQ(clean.report.digest().find("full"), std::string::npos);
  EXPECT_TRUE(clean.report.health_log.empty());
}

}  // namespace
}  // namespace chronus::sim