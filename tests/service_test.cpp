// Tests for the online update service: capacity-ledger reservation
// semantics (including the multi-threaded invariants the ThreadSanitizer
// preset hammers), admission control, workload generation, trace IO, and
// the end-to-end determinism contract — a 200-request trace must complete
// with zero verifier violations and a bit-identical report for any worker
// count.
#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <thread>
#include <vector>

#include "io/trace_io.hpp"
#include "obs/metrics.hpp"
#include "service/admission.hpp"
#include "service/capacity_ledger.hpp"
#include "service/service.hpp"
#include "service/worker_pool.hpp"
#include "service/workload.hpp"
#include "util/rng.hpp"

namespace chronus::service {
namespace {

using net::NodeId;
using net::Path;

/// s -> m -> t plus a bypass s -> b -> t.
net::Graph diamond(double cap_main, double cap_bypass) {
  net::Graph g;
  g.add_nodes(4);  // s=0 m=1 t=2 b=3
  g.add_link(0, 1, net::Capacity{cap_main}, 1);
  g.add_link(1, 2, net::Capacity{cap_main}, 1);
  g.add_link(0, 3, net::Capacity{cap_bypass}, 1);
  g.add_link(3, 2, net::Capacity{cap_bypass}, 1);
  return g;
}

TEST(TransitionFootprint, CountsEachPathOccurrence) {
  const net::Graph g = diamond(4.0, 4.0);
  const Footprint fp =
      transition_footprint(g, Path{0, 1, 2}, Path{0, 3, 2}, net::Demand{1.5});
  ASSERT_EQ(fp.size(), 4u);
  for (const auto& [link, amount] : fp) EXPECT_DOUBLE_EQ(amount.value(), 1.5);
}

TEST(TransitionFootprint, SharedLinksCountTwice) {
  net::Graph g;
  g.add_nodes(4);  // s=0 a=1 b=2 t=3 ; shared tail a->b->t
  g.add_link(0, 1, net::Capacity{4.0}, 1);   // s->a (init only)
  g.add_link(1, 2, net::Capacity{4.0}, 1);   // a->b (both)
  g.add_link(2, 3, net::Capacity{4.0}, 1);   // b->t (both)
  const net::LinkId via = g.add_link(0, 2, net::Capacity{4.0}, 1);  // s->b unused
  (void)via;
  const Footprint fp =
      transition_footprint(g, Path{0, 1, 2, 3}, Path{0, 1, 2, 3}, net::Demand{1.0});
  EXPECT_DOUBLE_EQ(fp.at(0).value(), 2.0);
  EXPECT_DOUBLE_EQ(fp.at(1).value(), 2.0);
  EXPECT_DOUBLE_EQ(fp.at(2).value(), 2.0);
  EXPECT_EQ(fp.count(3), 0u);
}

TEST(TransitionFootprint, RejectsPathsOffTheGraph) {
  const net::Graph g = diamond(4.0, 4.0);
  EXPECT_THROW(transition_footprint(g, Path{2, 0}, Path{0, 3, 2}, net::Demand{1.0}),
               std::invalid_argument);
}

TEST(CapacityLedger, ReserveIsAllOrNothing) {
  const net::Graph g = diamond(2.0, 1.0);
  CapacityLedger ledger(g);
  // Fits the main rail but not the bypass: nothing may be committed.
  Footprint fp{{0, net::Demand{1.5}}, {2, net::Demand{1.5}}};
  EXPECT_FALSE(ledger.try_reserve(fp));
  EXPECT_DOUBLE_EQ(ledger.committed(0).value(), 0.0);
  EXPECT_DOUBLE_EQ(ledger.committed(2).value(), 0.0);

  Footprint ok{{0, net::Demand{1.5}}, {1, net::Demand{1.5}}};
  EXPECT_TRUE(ledger.fits(ok));
  EXPECT_TRUE(ledger.try_reserve(ok));
  EXPECT_DOUBLE_EQ(ledger.headroom(0).value(), 0.5);
  // A second copy no longer fits; ledger unchanged by the failed attempt.
  EXPECT_FALSE(ledger.try_reserve(ok));
  EXPECT_DOUBLE_EQ(ledger.committed(0).value(), 1.5);

  ledger.release(ok);
  EXPECT_TRUE(ledger.idle());
  EXPECT_DOUBLE_EQ(ledger.headroom(0).value(), 2.0);
}

TEST(CapacityLedger, OverReleaseThrows) {
  const net::Graph g = diamond(2.0, 2.0);
  CapacityLedger ledger(g);
  EXPECT_THROW(ledger.release(Footprint{{0, net::Demand{0.5}}}), std::logic_error);
  ASSERT_TRUE(ledger.try_reserve(Footprint{{0, net::Demand{1.0}}}));
  EXPECT_THROW(ledger.release(Footprint{{0, net::Demand{1.5}}}), std::logic_error);
  ledger.release(Footprint{{0, net::Demand{1.0}}});
  EXPECT_TRUE(ledger.idle());
}

TEST(CapacityLedger, RestrictedGraphCarriesTheReservation) {
  const net::Graph g = diamond(4.0, 4.0);
  CapacityLedger ledger(g);
  const Footprint fp{{0, net::Demand{1.25}}, {1, net::Demand{1.25}}};
  const net::Graph r = ledger.restricted_graph(g, fp);
  EXPECT_DOUBLE_EQ(r.link(0).capacity.value(), 1.25);
  EXPECT_DOUBLE_EQ(r.link(1).capacity.value(), 1.25);
  EXPECT_DOUBLE_EQ(r.link(2).capacity.value(), 4.0);  // untouched
  EXPECT_DOUBLE_EQ(g.link(0).capacity.value(), 4.0);  // original intact
}

TEST(CapacityLedger, ConcurrentReserveReleaseNeverOvercommits) {
  const net::Graph g = diamond(3.0, 2.0);
  CapacityLedger ledger(g);
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::atomic<int> reservations{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&ledger, &reservations, t] {
      util::Rng rng(static_cast<std::uint64_t>(1000 + t));
      for (int i = 0; i < kIters; ++i) {
        Footprint fp;
        fp[static_cast<net::LinkId>(rng.uniform_int(0, 3))] =
            net::Demand{0.5 + rng.uniform01()};
        fp[static_cast<net::LinkId>(rng.uniform_int(0, 3))] =
            net::Demand{0.5 + rng.uniform01()};
        if (ledger.try_reserve(fp)) {
          ++reservations;
          // Committed amounts may never exceed capacity while held.
          for (const auto& [link, _] : fp) {
            EXPECT_LE(ledger.committed(link),
                      ledger.capacity(link) + net::Demand{1e-9});
          }
          ledger.release(fp);
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_TRUE(ledger.idle());
  EXPECT_GT(reservations.load(), 0);
  EXPECT_LE(ledger.peak_utilization(), 1.0 + 1e-9);
}

TEST(WorkerPool, RunsEverySubmittedJobAcrossRounds) {
  WorkerPool pool(4);
  std::atomic<int> count{0};
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 40; ++i) {
      pool.submit([&count] { ++count; });
    }
    pool.wait_idle();
    EXPECT_EQ(count.load(), 40 * (round + 1));
  }
}

TEST(Workload, IsDeterministicPerSeed) {
  WorkloadOptions opt;
  opt.requests = 40;
  opt.rescue_sites = 1;
  opt.seed = 9;
  const ServiceTrace a = make_workload(opt);
  const ServiceTrace b = make_workload(opt);
  ASSERT_EQ(a.requests.size(), 40u);
  ASSERT_EQ(a.requests.size(), b.requests.size());
  for (std::size_t i = 0; i < a.requests.size(); ++i) {
    EXPECT_EQ(a.requests[i].id, b.requests[i].id);
    EXPECT_EQ(a.requests[i].arrival, b.requests[i].arrival);
    EXPECT_DOUBLE_EQ(a.requests[i].demand.value(), b.requests[i].demand.value());
    EXPECT_EQ(a.requests[i].p_init, b.requests[i].p_init);
    EXPECT_EQ(a.requests[i].p_fin, b.requests[i].p_fin);
  }
  opt.seed = 10;
  const ServiceTrace c = make_workload(opt);
  bool differs = false;
  for (std::size_t i = 0; i < a.requests.size(); ++i) {
    differs = differs || a.requests[i].arrival != c.requests[i].arrival;
  }
  EXPECT_TRUE(differs);
}

TEST(Workload, RejectsMoreSitesThanRequests) {
  WorkloadOptions opt;
  opt.requests = 5;
  opt.rescue_sites = 2;
  EXPECT_THROW(make_workload(opt), std::invalid_argument);
}

TEST(TraceIo, RoundTrips) {
  WorkloadOptions opt;
  opt.requests = 12;
  opt.rescue_sites = 1;
  const ServiceTrace trace = make_workload(opt);
  std::stringstream buf;
  io::write_trace(buf, trace);
  const ServiceTrace back = io::read_trace(buf);
  ASSERT_EQ(back.graph.link_count(), trace.graph.link_count());
  for (net::LinkId l = 0; l < trace.graph.link_count(); ++l) {
    EXPECT_DOUBLE_EQ(back.graph.link(l).capacity.value(),
                     trace.graph.link(l).capacity.value());
  }
  ASSERT_EQ(back.requests.size(), trace.requests.size());
  for (std::size_t i = 0; i < trace.requests.size(); ++i) {
    EXPECT_EQ(back.requests[i].id, trace.requests[i].id);
    EXPECT_EQ(back.requests[i].arrival, trace.requests[i].arrival);
    EXPECT_EQ(back.requests[i].deadline, trace.requests[i].deadline);
    EXPECT_EQ(back.requests[i].priority, trace.requests[i].priority);
    EXPECT_NEAR(back.requests[i].demand.value(), trace.requests[i].demand.value(), 1e-9);
    EXPECT_EQ(back.requests[i].p_init, trace.requests[i].p_init);
    EXPECT_EQ(back.requests[i].p_fin, trace.requests[i].p_fin);
  }
}

TEST(TraceIo, RejectsDuplicateIds) {
  std::stringstream buf(
      "link s m cap=2 delay=1\nlink m t cap=2 delay=1\n"
      "link s b cap=2 delay=1\nlink b t cap=2 delay=1\n"
      "request 1 arrival=0 demand=1 init s m t fin s b t\n"
      "request 1 arrival=5 demand=1 init s m t fin s b t\n");
  EXPECT_THROW(io::read_trace(buf), std::runtime_error);
}

UpdateRequest reroute_request(std::uint64_t id, sim::SimTime arrival,
                              double demand) {
  UpdateRequest req;
  req.id = id;
  req.arrival = arrival;
  req.demand = net::Demand{demand};
  req.p_init = Path{0, 1, 2};
  req.p_fin = Path{0, 3, 2};
  return req;
}

TEST(UpdateService, CompletesASingleRequest) {
  UpdateService svc(diamond(2.0, 2.0));
  const ServiceReport rep = svc.run({reroute_request(0, 0, 1.0)});
  ASSERT_EQ(rep.records.size(), 1u);
  EXPECT_EQ(rep.records[0].status, RequestStatus::kCompleted);
  EXPECT_TRUE(rep.records[0].plan_verified);
  EXPECT_TRUE(rep.records[0].run_verified);
  EXPECT_EQ(rep.violations, 0);
  EXPECT_GT(rep.records[0].latency(), 0);
  EXPECT_GT(rep.throughput_hz(), 0.0);
}

TEST(UpdateService, RejectsUnfittableDemand) {
  UpdateService svc(diamond(2.0, 2.0));
  const ServiceReport rep = svc.run({reroute_request(0, 0, 5.0)});
  EXPECT_EQ(rep.records[0].status, RequestStatus::kRejectedInfeasible);
  EXPECT_EQ(rep.completed, 0);
}

TEST(UpdateService, RejectsExpiredDeadlines) {
  UpdateRequest req = reroute_request(0, 10 * sim::kMillisecond, 1.0);
  req.deadline = req.arrival + 1;  // expires before the epoch boundary
  UpdateService svc(diamond(2.0, 2.0));
  const ServiceReport rep = svc.run({req});
  EXPECT_EQ(rep.records[0].status, RequestStatus::kRejectedDeadline);
}

TEST(UpdateService, RejectsDuplicateIds) {
  UpdateService svc(diamond(2.0, 2.0));
  EXPECT_THROW(
      svc.run({reroute_request(1, 0, 1.0), reroute_request(1, 0, 1.0)}),
      std::invalid_argument);
}

TEST(UpdateService, SerializesContendingRequests) {
  // Both requests transition over the same links; the rails hold one flow,
  // so the second must wait for the first release.
  UpdateService svc(diamond(1.5, 1.5));
  const ServiceReport rep =
      svc.run({reroute_request(0, 0, 1.0), reroute_request(1, 0, 1.0)});
  EXPECT_EQ(rep.records[0].status, RequestStatus::kCompleted);
  EXPECT_EQ(rep.records[1].status, RequestStatus::kCompleted);
  EXPECT_EQ(rep.violations, 0);
  EXPECT_GT(rep.records[1].defers, 0);
  EXPECT_GT(rep.records[1].completed, rep.records[0].completed);
}

TEST(UpdateService, StarvedRequestsAreRejectedAtMaxDefers) {
  ServiceOptions opts;
  opts.admission.max_defers = 2;
  UpdateService svc(diamond(1.5, 1.5), opts);
  const ServiceReport rep =
      svc.run({reroute_request(0, 0, 1.0), reroute_request(1, 0, 1.0)});
  EXPECT_EQ(rep.records[0].status, RequestStatus::kCompleted);
  EXPECT_EQ(rep.records[1].status, RequestStatus::kRejectedCapacity);
}

TEST(UpdateService, JointBatchRescuesABlockedEnterer) {
  // One rescue site: an enterer grabs the contested link, then a vacater
  // and a second enterer arrive while it is in flight. The second enterer
  // only fits if admission batches it with the vacater and
  // schedule_flows_jointly orders the vacate before the enter.
  WorkloadOptions wopt;
  wopt.requests = 3;
  wopt.rescue_sites = 1;
  wopt.seed = 3;
  const ServiceTrace trace = make_workload(wopt);
  UpdateService svc(trace.graph);
  const ServiceReport rep = svc.run(trace);
  EXPECT_EQ(rep.completed, 3);
  EXPECT_EQ(rep.joint_batches, 1);
  EXPECT_EQ(rep.violations, 0);
  int joint = 0;
  for (const RequestRecord& r : rep.records) joint += r.joint;
  EXPECT_EQ(joint, 2);  // the vacater and the rescued enterer
}

TEST(UpdateService, PlanOnlyModeSkipsExecution) {
  ServiceOptions opts;
  opts.execute = false;
  UpdateService svc(diamond(2.0, 2.0), opts);
  const ServiceReport rep = svc.run({reroute_request(0, 0, 1.0)});
  EXPECT_EQ(rep.records[0].status, RequestStatus::kCompleted);
  EXPECT_EQ(rep.records[0].exec_retries, 0);
  EXPECT_EQ(rep.records[0].exec_duration, 0);
  EXPECT_GT(rep.records[0].plan_span, 0);
}

/// The acceptance bar: a 200-request generated trace completes with zero
/// verifier violations and a bit-identical report digest for 1 and 4
/// workers.
TEST(UpdateService, TwoHundredRequestTraceIsDeterministicAndClean) {
  WorkloadOptions wopt;
  wopt.requests = 200;
  wopt.arrival_rate_hz = 40.0;
  wopt.conflict_density = 0.5;
  wopt.rescue_sites = 2;
  wopt.seed = 3;
  const ServiceTrace trace = make_workload(wopt);

  ServiceOptions one;
  one.workers = 1;
  ServiceOptions four;
  four.workers = 4;

  // Each run observes into its own registry, so the metrics surface can be
  // compared across worker counts exactly like the report digest.
  obs::MetricsRegistry reg1;
  obs::MetricsSnapshot snap1;
  ServiceReport rep1;
  {
    const obs::ScopedMetrics scope(reg1);
    rep1 = UpdateService(trace.graph, one).run(trace);
    snap1 = reg1.snapshot();
  }
  obs::MetricsRegistry reg4;
  obs::MetricsSnapshot snap4;
  ServiceReport rep4;
  {
    const obs::ScopedMetrics scope(reg4);
    rep4 = UpdateService(trace.graph, four).run(trace);
    snap4 = reg4.snapshot();
  }

  EXPECT_EQ(rep4.violations, 0);
  EXPECT_EQ(rep4.failed, 0);
  EXPECT_GT(rep4.completed, 100);
  EXPECT_GE(rep4.joint_batches, 1);
  EXPECT_GT(rep4.throughput_hz(), 0.0);
  EXPECT_EQ(rep1.digest(), rep4.digest());

  // The determinism contract extends to every logical metric: counters
  // (admissions, rejections, rescues, ledger reserve/release totals, ...)
  // and virtual-time histograms must be bit-identical; only wall-clock
  // durations and gauges may differ between worker counts.
  const obs::MetricsSnapshot logical1 = snap1.logical();
  const obs::MetricsSnapshot logical4 = snap4.logical();
  EXPECT_EQ(logical1.counters, logical4.counters);
  EXPECT_EQ(logical1.histograms, logical4.histograms);
  EXPECT_GT(logical4.counters.at("ledger.reserves"), 0u);
  EXPECT_EQ(logical4.counters.at("ledger.reserves"),
            logical4.counters.at("ledger.releases"));
  EXPECT_GT(logical4.counters.at("admission.rounds"), 0u);
  EXPECT_GT(logical4.counters.at("service.completed"), 100u);
}

}  // namespace
}  // namespace chronus::service
