// Tests for the observability layer (src/obs): instrument semantics,
// registry snapshots, the install/veto lifecycle, span nesting, the
// concurrent-update hammer the ThreadSanitizer preset exercises, the
// deterministic-replay contract of the instrumented service pipeline, and
// the golden JSON export format.
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <thread>
#include <vector>

#include "core/greedy_scheduler.hpp"
#include "net/generators.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "service/service.hpp"
#include "service/workload.hpp"
#include "timenet/verifier.hpp"
#include "util/json_writer.hpp"

namespace chronus {
namespace {

TEST(Counter, AccumulatesAdds) {
  obs::Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, TracksValueAndHighWaterMark) {
  obs::Gauge g;
  g.set(3);
  g.add(4);
  g.add(-5);
  EXPECT_EQ(g.value(), 2);
  EXPECT_EQ(g.max(), 7);
  g.set(100);
  EXPECT_EQ(g.max(), 100);
}

TEST(Histogram, BucketsByPowerOfTwoAndKeepsExactMoments) {
  obs::Histogram h;
  h.observe(0);
  h.observe(1);     // bucket 0: < 2
  h.observe(3);     // bucket 1: < 4
  h.observe(1000);  // bucket 9: < 1024
  h.observe(-5);    // clamped to 0, bucket 0
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 1004);
  EXPECT_EQ(h.max(), 1000);
  EXPECT_EQ(h.bucket(0), 3u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(9), 1u);
  EXPECT_EQ(obs::Histogram::bucket_bound(0), 2);
  EXPECT_EQ(obs::Histogram::bucket_bound(9), 1024);
  EXPECT_EQ(obs::Histogram::bucket_bound(obs::Histogram::kBuckets - 1),
            INT64_MAX);
}

TEST(MetricsRegistry, InstrumentsAreStableAcrossLookups) {
  obs::MetricsRegistry reg;
  obs::Counter& a = reg.counter("x");
  reg.counter("y").add(2);
  obs::Counter& again = reg.counter("x");
  EXPECT_EQ(&a, &again);
  a.add(5);
  const obs::MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("x"), 5u);
  EXPECT_EQ(snap.counters.at("y"), 2u);
}

TEST(MetricsRegistry, HelpersNoOpWhenNoRegistryInstalled) {
  ASSERT_EQ(obs::registry(), nullptr);
  obs::add("ghost");          // must not crash or allocate a registry
  obs::observe("ghost", 10);  // likewise
  EXPECT_EQ(obs::counter_ptr("ghost"), nullptr);
  EXPECT_EQ(obs::registry(), nullptr);
}

TEST(MetricsRegistry, ScopedInstallRoutesHelpersAndRestores) {
  obs::MetricsRegistry reg;
  {
    const obs::ScopedMetrics scope(reg);
    EXPECT_EQ(obs::registry(), &reg);
    obs::add("hits", 3);
    obs::gauge_set("depth", 7);
    obs::observe("lat_us", 100);
  }
  EXPECT_EQ(obs::registry(), nullptr);
  const obs::MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("hits"), 3u);
  EXPECT_EQ(snap.gauges.at("depth").value, 7);
  EXPECT_EQ(snap.histograms.at("lat_us").count, 1u);
}

TEST(MetricsRegistry, MetricsMuteSilencesOnlyTheCallingThread) {
  obs::MetricsRegistry reg;
  const obs::ScopedMetrics scope(reg);
  obs::add("audible");
  {
    const obs::MetricsMute mute;
    EXPECT_EQ(obs::registry(), nullptr);
    obs::add("audible");  // dropped: contract scans must not perturb metrics
    // Concurrent workers must keep recording while this thread is muted.
    std::thread other([] { obs::add("audible"); });
    other.join();
  }
  EXPECT_EQ(obs::registry(), &reg);
  EXPECT_EQ(reg.snapshot().counters.at("audible"), 2u);
}

TEST(MetricsRegistry, EnvironmentKillSwitchVetoesInstall) {
  ASSERT_EQ(setenv("CHRONUS_METRICS", "off", 1), 0);
  obs::MetricsRegistry reg;
  {
    const obs::ScopedMetrics scope(reg);
    EXPECT_EQ(obs::registry(), nullptr);
    obs::add("dark");
  }
  ASSERT_EQ(unsetenv("CHRONUS_METRICS"), 0);
  EXPECT_TRUE(reg.snapshot().counters.empty());
}

TEST(MetricsSnapshot, LogicalSliceDropsWallAndGaugeState) {
  obs::MetricsRegistry reg;
  reg.counter("a.calls").add(2);
  reg.gauge("queue").set(5);
  reg.histogram("virtual_us").observe(10);
  reg.histogram("span.x_wall_us").observe(1234);
  const obs::MetricsSnapshot logical = reg.snapshot().logical();
  EXPECT_EQ(logical.counters.size(), 1u);
  EXPECT_TRUE(logical.gauges.empty());
  EXPECT_EQ(logical.histograms.count("virtual_us"), 1u);
  EXPECT_EQ(logical.histograms.count("span.x_wall_us"), 0u);
  EXPECT_TRUE(obs::MetricsSnapshot::is_wall_metric("span.x_wall_us"));
  EXPECT_FALSE(obs::MetricsSnapshot::is_wall_metric("virtual_us"));
}

TEST(Span, BuildsDottedPathsAndRecordsCallCounts) {
  obs::MetricsRegistry reg;
  {
    const obs::ScopedMetrics scope(reg);
    CHRONUS_SPAN("outer");
    EXPECT_EQ(obs::Span::current()->path(), "outer");
    {
      CHRONUS_SPAN("inner");
      EXPECT_EQ(obs::Span::current()->path(), "outer.inner");
    }
    EXPECT_EQ(obs::Span::current()->path(), "outer");
  }
  EXPECT_EQ(obs::Span::current(), nullptr);
  const obs::MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("span.outer.calls"), 1u);
  EXPECT_EQ(snap.counters.at("span.outer.inner.calls"), 1u);
  EXPECT_EQ(snap.histograms.at("span.outer_wall_us").count, 1u);
  EXPECT_EQ(snap.histograms.at("span.outer.inner_wall_us").count, 1u);
}

TEST(Span, DisabledSpanHasNoPathAndRecordsNothing) {
  ASSERT_EQ(obs::registry(), nullptr);
  CHRONUS_SPAN("ghost");
  EXPECT_EQ(obs::Span::current(), nullptr);
}

// The TSan hammer (run under the thread-sanitize preset alongside the
// ledger hammer): 8 threads pounding shared counters, a gauge and a
// histogram through a freshly installed registry, including first-use slot
// creation races. The totals are exact because updates are atomic.
TEST(MetricsRegistry, ConcurrentUpdateHammer) {
  constexpr int kThreads = 8;
  constexpr int kIters = 4000;
  obs::MetricsRegistry reg;
  const obs::ScopedMetrics scope(reg);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kIters; ++i) {
        obs::add("hammer.hits");
        obs::add(i % 2 == 0 ? "hammer.even" : "hammer.odd");
        obs::observe("hammer.lat_us", i % 1000);
        obs::gauge_add("hammer.level", i % 2 == 0 ? 1 : -1);
        if (i % 64 == t % 64) {
          CHRONUS_SPAN("hammer.span");
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const obs::MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("hammer.hits"),
            static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(snap.counters.at("hammer.even") + snap.counters.at("hammer.odd"),
            static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(snap.histograms.at("hammer.lat_us").count,
            static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(snap.gauges.at("hammer.level").value, 0);
}

// Deterministic replay over the full instrumented pipeline: the same
// 200-request workload, workers=1 vs workers=4, must produce bit-identical
// logical metrics (admissions, rejections, rescues, ledger totals, B&B and
// scheduler work counts, virtual-time latency histograms).
TEST(ObsReplay, ServiceMetricsAreBitIdenticalAcrossWorkerCounts) {
  service::WorkloadOptions wopt;
  wopt.requests = 200;
  wopt.arrival_rate_hz = 40.0;
  wopt.conflict_density = 0.5;
  wopt.rescue_sites = 2;
  wopt.seed = 3;
  const service::ServiceTrace trace = service::make_workload(wopt);

  const auto run_with_workers = [&](int workers) {
    service::ServiceOptions opts;
    opts.workers = workers;
    obs::MetricsRegistry reg;
    const obs::ScopedMetrics scope(reg);
    const service::ServiceReport report =
        service::UpdateService(trace.graph, opts).run(trace);
    EXPECT_EQ(report.violations, 0);
    return reg.snapshot().logical();
  };

  const obs::MetricsSnapshot one = run_with_workers(1);
  const obs::MetricsSnapshot four = run_with_workers(4);
  ASSERT_FALSE(one.counters.empty());
  // Compare per metric rather than EXPECT_EQ on the snapshots so a
  // regression names the diverging counter instead of dumping raw bytes.
  for (const auto& [name, v] : one.counters) {
    const auto it = four.counters.find(name);
    if (it == four.counters.end()) {
      ADD_FAILURE() << "counter only with workers=1: " << name;
    } else {
      EXPECT_EQ(v, it->second) << "counter diverged: " << name;
    }
  }
  for (const auto& [name, v] : four.counters) {
    if (one.counters.count(name) == 0) {
      ADD_FAILURE() << "counter only with workers=4: " << name;
    }
  }
  for (const auto& [name, h] : one.histograms) {
    const auto it = four.histograms.find(name);
    if (it == four.histograms.end()) {
      ADD_FAILURE() << "histogram only with workers=1: " << name;
      continue;
    }
    EXPECT_EQ(h.count, it->second.count) << "histogram count diverged: " << name;
    EXPECT_EQ(h.sum, it->second.sum) << "histogram sum diverged: " << name;
    EXPECT_EQ(h.max, it->second.max) << "histogram max diverged: " << name;
    EXPECT_EQ(h.buckets, it->second.buckets)
        << "histogram buckets diverged: " << name;
  }
  EXPECT_EQ(one.histograms.size(), four.histograms.size());
  EXPECT_EQ(one, four);
  // Spot-check the families the replay contract names.
  EXPECT_GT(one.counters.at("ledger.reserves"), 0u);
  EXPECT_EQ(one.counters.at("ledger.reserves"),
            one.counters.at("ledger.releases"));
  EXPECT_GT(one.counters.at("admission.rounds"), 0u);
  EXPECT_GT(one.counters.at("greedy.calls"), 0u);
  EXPECT_GT(one.counters.at("workerpool.jobs"), 0u);
  EXPECT_GT(one.histograms.at("service.request_latency_us").count, 0u);
}

// Golden snapshot of the JSON export: a fixed-seed instance through the
// guarded greedy scheduler and the exact verifier, exported with wall
// clocks masked, must match this document byte for byte. A diff here means
// the export format (or the instrumentation of these two layers) changed —
// update the golden deliberately, never silently.
TEST(ObsExport, GoldenMaskedJsonSnapshot) {
  obs::MetricsRegistry reg;
  {
    const obs::ScopedMetrics scope(reg);
    const net::UpdateInstance inst = net::fig1_instance();
    const core::ScheduleResult res = core::greedy_schedule(inst, {});
    ASSERT_TRUE(res.feasible());
    ASSERT_TRUE(timenet::verify_transition(inst, res.schedule).ok());
  }
  std::ostringstream out;
  {
    util::JsonWriter json(out, "golden");
    reg.snapshot().write_json(json, /*mask_wall=*/true);
  }
  const std::string expected =
      "{\"bench\":\"golden\",\"rows\":[\n"
      "{\"name\":\"greedy.calls\",\"type\":\"counter\",\"value\":1},\n"
      "{\"name\":\"greedy.dep_rebuilds\",\"type\":\"counter\",\"value\":4},\n"
      "{\"name\":\"greedy.heads_expanded\",\"type\":\"counter\",\"value\":7},\n"
      "{\"name\":\"greedy.rounds\",\"type\":\"counter\",\"value\":4},\n"
      "{\"name\":\"greedy.updates\",\"type\":\"counter\",\"value\":5},\n"
      "{\"name\":\"loopcheck.invocations\",\"type\":\"counter\",\"value\":7},\n"
      "{\"name\":\"span.greedy.schedule.calls\",\"type\":\"counter\","
      "\"value\":1},\n"
      "{\"name\":\"span.verifier.transitions.calls\",\"type\":\"counter\","
      "\"value\":1},\n"
      "{\"name\":\"verifier.calls\",\"type\":\"counter\",\"value\":1},\n"
      "{\"name\":\"verifier.classes_traced\",\"type\":\"counter\","
      "\"value\":28},\n"
      "{\"name\":\"verifier.links_checked\",\"type\":\"counter\","
      "\"value\":85},\n"
      "{\"name\":\"verifier.violations\",\"type\":\"counter\",\"value\":0},\n"
      "{\"name\":\"span.greedy.schedule_wall_us\",\"type\":\"histogram\","
      "\"count\":1,\"sum_us\":0,\"max_us\":0,\"buckets\":\"\"},\n"
      "{\"name\":\"span.verifier.transitions_wall_us\",\"type\":\"histogram\","
      "\"count\":1,\"sum_us\":0,\"max_us\":0,\"buckets\":\"\"}\n"
      "]}\n";
  EXPECT_EQ(out.str(), expected);
}

}  // namespace
}  // namespace chronus
