// Tests for the time-extended network, trajectory tracing and the exact
// transition verifier — validated against the paper's Fig. 1/2 scenarios:
// all-at-once updating loops, the {v1,v2}@t0 plan congests v4->v5, and the
// timed plan v2@t0, v3@t1, {v1,v4}@t2, v5@t3 is congestion- and loop-free.
#include <gtest/gtest.h>

#include "net/generators.hpp"
#include "timenet/schedule.hpp"
#include "timenet/time_extended.hpp"
#include "timenet/trajectory.hpp"
#include "timenet/verifier.hpp"

namespace chronus::timenet {
namespace {

using net::NodeId;
using net::Path;

// Node ids in fig1_instance(): v1=0 .. v6=5.
constexpr NodeId v1 = 0, v2 = 1, v3 = 2, v4 = 3, v5 = 4, v6 = 5;

UpdateSchedule paper_schedule() {
  UpdateSchedule s;
  s.set(v2, timenet::TimePoint{0});
  s.set(v3, timenet::TimePoint{1});
  s.set(v1, timenet::TimePoint{2});
  s.set(v4, timenet::TimePoint{2});
  s.set(v5, timenet::TimePoint{3});
  return s;
}

TEST(UpdateScheduleT, Accessors) {
  UpdateSchedule s = paper_schedule();
  EXPECT_EQ(s.size(), 5u);
  EXPECT_EQ(s.at(v2), std::optional<TimePoint>(0));
  EXPECT_FALSE(s.at(v6).has_value());
  EXPECT_EQ(s.first_time(), TimePoint{0});
  EXPECT_EQ(s.last_time(), TimePoint{3});
  EXPECT_EQ(s.step_span(), 4);
}

TEST(UpdateScheduleT, ByTimeGroups) {
  const auto groups = paper_schedule().by_time();
  ASSERT_EQ(groups.size(), 4u);
  EXPECT_EQ(groups[2].first, TimePoint{2});
  EXPECT_EQ(groups[2].second, (std::vector<NodeId>{v1, v4}));
}

TEST(UpdateScheduleT, EmptySpan) {
  UpdateSchedule s;
  EXPECT_EQ(s.step_span(), 0);
  EXPECT_TRUE(s.empty());
}

TEST(TimeExtendedNetwork, CopiesAndLinks) {
  const auto inst = net::fig1_instance();
  const TimeExtendedNetwork gt(inst.graph(), TimePoint{0}, TimePoint{3});
  EXPECT_EQ(gt.time_steps(), 4u);
  EXPECT_EQ(gt.node_copies(), 24u);
  // Unit delays: every link u(t) -> v(t+1) exists for t in [0, 2].
  EXPECT_EQ(gt.links().size(), inst.graph().link_count() * 3);
}

TEST(TimeExtendedNetwork, LinkAtRespectsDelay) {
  net::Graph g;
  g.add_nodes(2);
  g.add_link(0, 1, net::Capacity{1.0}, 2);
  const TimeExtendedNetwork gt(g, timenet::TimePoint{0}, timenet::TimePoint{5});
  const auto l = gt.link_at(0, 1, timenet::TimePoint{1});
  ASSERT_TRUE(l.has_value());
  EXPECT_EQ(l->to.time, TimePoint{3});
  EXPECT_EQ(gt.to_string(*l), "v1(t1) -> v2(t3)");
  // Head beyond the window is dropped by default.
  EXPECT_FALSE(gt.link_at(0, 1, timenet::TimePoint{4}).has_value());
  const TimeExtendedNetwork gt_keep(g, TimePoint{0}, TimePoint{5},
                                    /*keep_boundary_links=*/true);
  EXPECT_TRUE(gt_keep.link_at(0, 1, timenet::TimePoint{4}).has_value());
}

TEST(TimeExtendedNetwork, OutLinksOutsideWindowEmpty) {
  net::Graph g;
  g.add_nodes(2);
  g.add_link(0, 1, net::Capacity{1.0}, 1);
  const TimeExtendedNetwork gt(g, timenet::TimePoint{0}, timenet::TimePoint{2});
  EXPECT_TRUE(gt.out_links(0, timenet::TimePoint{5}).empty());
  EXPECT_THROW(TimeExtendedNetwork(g, timenet::TimePoint{3}, timenet::TimePoint{2}), std::invalid_argument);
}

TEST(Trajectory, SteadyOldPath) {
  const auto inst = net::fig1_instance();
  const UpdateSchedule none;
  const Trace t = trace_class(inst, none, timenet::TimePoint{10});
  EXPECT_EQ(t.end, TraceEnd::kDelivered);
  ASSERT_EQ(t.hops.size(), 6u);
  EXPECT_EQ(t.hops.back().node, v6);
  EXPECT_EQ(t.hops.back().arrival, TimePoint{15});
}

TEST(Trajectory, FollowsNewRulesAfterUpdate) {
  const auto inst = net::fig1_instance();
  UpdateSchedule s;
  s.set(v2, timenet::TimePoint{0});
  // A class injected at 0 reaches v2 at 1 >= 0: it takes v2 -> v6.
  const Trace t = trace_class(inst, s, timenet::TimePoint{0});
  EXPECT_EQ(t.end, TraceEnd::kDelivered);
  ASSERT_EQ(t.hops.size(), 3u);
  EXPECT_EQ(t.hops[1].node, v2);
  EXPECT_EQ(t.hops[2].node, v6);
}

TEST(Trajectory, OldClassUnaffectedByLaterUpdate) {
  const auto inst = net::fig1_instance();
  UpdateSchedule s;
  s.set(v2, timenet::TimePoint{0});
  // Injected at -2: reaches v2 at -1 < 0, stays on the old path throughout.
  const Trace t = trace_class(inst, s, TimePoint{-2});
  EXPECT_EQ(t.end, TraceEnd::kDelivered);
  EXPECT_EQ(t.hops.size(), 6u);
}

TEST(Trajectory, DetectsLoop) {
  const auto inst = net::fig1_instance();
  UpdateSchedule s;
  for (const NodeId v : {v1, v2, v3, v4, v5}) s.set(v, timenet::TimePoint{0});
  // The class at v3 at t0 (injected -2) goes v3 -> v2, revisits v2, and
  // still exits via v2 -> v6 (the very traffic that congests that link).
  const Trace t = trace_class(inst, s, TimePoint{-2});
  EXPECT_TRUE(t.looped());
  EXPECT_EQ(t.loop_node, v2);
  EXPECT_EQ(t.end, TraceEnd::kDelivered);
  EXPECT_EQ(t.hops.back().node, v6);
}

TEST(Trajectory, BlackholeWhenRuleNotYetInstalled) {
  // New path via m, which has no old rule: a class redirected to m before
  // m's own update blackholes there.
  net::Graph g;
  g.add_nodes(3);  // s=0 m=1 t=2
  g.add_link(0, 2, net::Capacity{1.0}, 1);
  g.add_link(0, 1, net::Capacity{1.0}, 1);
  g.add_link(1, 2, net::Capacity{1.0}, 1);
  const auto inst =
      net::UpdateInstance::from_paths(g, Path{0, 2}, Path{0, 1, 2}, net::Demand{1.0});
  UpdateSchedule s;
  s.set(0, timenet::TimePoint{0});
  s.set(1, timenet::TimePoint{5});  // m's rule arrives too late
  const Trace t = trace_class(inst, s, timenet::TimePoint{0});
  EXPECT_EQ(t.end, TraceEnd::kBlackhole);
  EXPECT_EQ(t.fault_node, 1u);
  // Once m is installed, classes are delivered on the new path.
  const Trace late = trace_class(inst, s, timenet::TimePoint{4});
  EXPECT_EQ(late.end, TraceEnd::kDelivered);
}

TEST(Trajectory, PerPacketFlipSelectsWholePath) {
  const auto inst = net::fig1_instance();
  UpdateSchedule empty;
  FlowView view;
  view.graph = &inst.graph();
  view.instance = &inst;
  view.schedule = &empty;
  view.demand = net::Demand{1.0};
  view.per_packet_flip = timenet::TimePoint{5};
  const Trace before = trace_class(view, timenet::TimePoint{4});
  const Trace after = trace_class(view, timenet::TimePoint{5});
  ASSERT_EQ(before.hops.size(), 6u);  // old path end to end
  ASSERT_EQ(after.hops.size(), 5u);   // new path end to end
  EXPECT_EQ(after.hops[1].node, v4);
}

TEST(Trajectory, ToStringMentionsOutcome) {
  const auto inst = net::fig1_instance();
  const Trace t = trace_class(inst, UpdateSchedule{}, timenet::TimePoint{0});
  EXPECT_NE(to_string(inst.graph(), t).find("[delivered]"), std::string::npos);
}

TEST(Verifier, SteadyStateIsClean) {
  const auto inst = net::fig1_instance();
  const auto report = verify_transition(inst, UpdateSchedule{});
  EXPECT_TRUE(report.ok()) << report.to_string(inst.graph());
}

TEST(Verifier, PaperScheduleIsClean) {
  const auto inst = net::fig1_instance();
  const auto report = verify_transition(inst, paper_schedule());
  EXPECT_TRUE(report.ok()) << report.to_string(inst.graph());
}

TEST(Verifier, AllAtOnceLoops) {
  const auto inst = net::fig1_instance();
  UpdateSchedule s;
  for (const NodeId v : {v1, v2, v3, v4, v5}) s.set(v, timenet::TimePoint{0});
  const auto report = verify_transition(inst, s);
  EXPECT_FALSE(report.loop_free());
  // Fig. 2(a): the in-flight classes revisit v2 (via v3->v2 and v5->v2)
  // and v3 (via v4->v3).
  std::set<NodeId> looped;
  for (const auto& e : report.loops) looped.insert(e.node);
  EXPECT_TRUE(looped.count(v2));
}

TEST(Verifier, Fig2bCongestsV4V5) {
  const auto inst = net::fig1_instance();
  UpdateSchedule s;
  s.set(v1, timenet::TimePoint{0});
  s.set(v2, timenet::TimePoint{0});
  s.set(v3, timenet::TimePoint{1});
  s.set(v4, timenet::TimePoint{1});
  s.set(v5, timenet::TimePoint{1});
  const auto report = verify_transition(inst, s);
  EXPECT_FALSE(report.ok());
  // The new flow from v1 meets the old in-flight flow: congestion appears
  // (on v4->v3 under this exact schedule, per Fig. 2(b)).
  bool congested = !report.congestion.empty();
  EXPECT_TRUE(congested || !report.loop_free());
  EXPECT_FALSE(report.congestion_free());
}

TEST(Verifier, UpdatingV3WithV2Congests) {
  // §II.A: updating v3 together with v2 at t0 doubles the load on v2->v6.
  const auto inst = net::fig1_instance();
  UpdateSchedule s;
  s.set(v2, timenet::TimePoint{0});
  s.set(v3, timenet::TimePoint{0});
  const auto report = verify_transition(inst, s);
  ASSERT_FALSE(report.congestion_free());
  const auto link = inst.graph().find_link(v2, v6);
  bool on_v2v6 = false;
  for (const auto& c : report.congestion) on_v2v6 |= c.link == *link;
  EXPECT_TRUE(on_v2v6);
}

TEST(Verifier, DelayedV3IsClean) {
  // ... while updating v3 one unit later is safe.
  const auto inst = net::fig1_instance();
  UpdateSchedule s;
  s.set(v2, timenet::TimePoint{0});
  s.set(v3, timenet::TimePoint{1});
  const auto report = verify_transition(inst, s);
  EXPECT_TRUE(report.ok()) << report.to_string(inst.graph());
}

TEST(Verifier, V4AtT1Loops) {
  // §IV: "a forwarding loop will happen if v4 is updated [at t1]".
  const auto inst = net::fig1_instance();
  UpdateSchedule s;
  s.set(v2, timenet::TimePoint{0});
  s.set(v3, timenet::TimePoint{1});
  s.set(v4, timenet::TimePoint{1});
  const auto report = verify_transition(inst, s);
  EXPECT_FALSE(report.loop_free());
}

TEST(Verifier, FirstViolationOnlyStopsEarly) {
  const auto inst = net::fig1_instance();
  UpdateSchedule s;
  for (const NodeId v : {v1, v2, v3, v4, v5}) s.set(v, timenet::TimePoint{0});
  VerifyOptions vo;
  vo.first_violation_only = true;
  const auto report = verify_transition(inst, s, vo);
  EXPECT_FALSE(report.ok());
  EXPECT_LE(report.loops.size() + report.congestion.size(), 1u);
}

TEST(Verifier, LinkLoadsSteadyState) {
  const auto inst = net::fig1_instance();
  const auto loads = link_loads(inst, UpdateSchedule{});
  // Every old-path link carries exactly demand per entry step.
  for (const auto& [key, x] : loads) EXPECT_DOUBLE_EQ(x.value(), 1.0);
  EXPECT_FALSE(loads.empty());
}

TEST(Verifier, ReportToStringListsViolations) {
  const auto inst = net::fig1_instance();
  UpdateSchedule s;
  s.set(v2, timenet::TimePoint{0});
  s.set(v3, timenet::TimePoint{0});
  const auto report = verify_transition(inst, s);
  const std::string str = report.to_string(inst.graph());
  EXPECT_NE(str.find("VIOLATIONS"), std::string::npos);
  EXPECT_NE(str.find("congestion"), std::string::npos);
}

TEST(Verifier, PerPacketFlipDisjointPathsClean) {
  // Two-phase on Fig. 1: per-packet consistency never loops; the only
  // shared switches are the endpoints, so it is also congestion-free.
  const auto inst = net::fig1_instance();
  UpdateSchedule empty;
  FlowTransition ft;
  ft.instance = &inst;
  ft.schedule = &empty;
  ft.per_packet_flip = timenet::TimePoint{0};
  const auto report = verify_transitions({ft});
  EXPECT_TRUE(report.ok()) << report.to_string(inst.graph());
}

TEST(Verifier, PerPacketFlipOvertakingCongests) {
  // Old path s->a->b->t (slow prefix), new path s->b->t (fast prefix):
  // new-tag packets catch up with old-tag packets on the shared tight
  // link b->t, which two-phase cannot prevent.
  net::Graph g;
  g.add_nodes(4);  // s=0 a=1 b=2 t=3
  g.add_link(0, 1, net::Capacity{1.0}, 2);
  g.add_link(1, 2, net::Capacity{1.0}, 2);
  g.add_link(2, 3, net::Capacity{1.0}, 2);
  g.add_link(0, 2, net::Capacity{1.0}, 1);  // faster new prefix
  const auto inst =
      net::UpdateInstance::from_paths(g, Path{0, 1, 2, 3}, Path{0, 2, 3}, net::Demand{1.0});
  UpdateSchedule empty;
  FlowTransition ft;
  ft.instance = &inst;
  ft.schedule = &empty;
  ft.per_packet_flip = timenet::TimePoint{0};
  const auto report = verify_transitions({ft});
  EXPECT_FALSE(report.congestion_free());
  EXPECT_TRUE(report.loop_free());
}

TEST(Verifier, MultiFlowLoadsAddUp) {
  // Two flows over the same tight link congest it even though each flow's
  // own transition is trivially clean.
  net::Graph g;
  g.add_nodes(4);  // s1=0 s2=1 m=2 t=3
  g.add_link(0, 2, net::Capacity{1.0}, 1);
  g.add_link(1, 2, net::Capacity{1.0}, 1);
  g.add_link(2, 3, net::Capacity{1.5}, 1);  // can hold one flow, not two
  const auto f1 =
      net::UpdateInstance::from_paths(g, Path{0, 2, 3}, Path{0, 2, 3}, net::Demand{1.0});
  const auto f2 =
      net::UpdateInstance::from_paths(g, Path{1, 2, 3}, Path{1, 2, 3}, net::Demand{1.0});
  UpdateSchedule s1, s2;
  FlowTransition t1, t2;
  t1.instance = &f1;
  t1.schedule = &s1;
  t2.instance = &f2;
  t2.schedule = &s2;
  const auto report = verify_transitions({t1, t2});
  EXPECT_FALSE(report.congestion_free());
}

}  // namespace
}  // namespace chronus::timenet
