// Unit tests for the util substrate: RNG determinism and distributions,
// summary statistics, step functions, tables and CLI parsing.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/step_function.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace chronus::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.next() == b.next();
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformIntRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto x = rng.uniform_int(-3, 5);
    EXPECT_GE(x, -3);
    EXPECT_LE(x, 5);
  }
}

TEST(Rng, UniformIntCoversRange) {
  Rng rng(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, SingletonRange) {
  Rng rng(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(4, 4), 4);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform01();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  Summary s;
  for (int i = 0; i < 20000; ++i) s.add(rng.normal(5.0, 2.0));
  EXPECT_NEAR(s.mean(), 5.0, 0.1);
  EXPECT_NEAR(s.stddev(), 2.0, 0.1);
}

TEST(Rng, LogNormalMedian) {
  Rng rng(17);
  Summary s;
  for (int i = 0; i < 20000; ++i) s.add(rng.log_normal(std::log(50.0), 0.8));
  EXPECT_NEAR(s.percentile(50), 50.0, 3.0);
  EXPECT_GT(s.max(), 150.0);  // heavy tail
}

TEST(Rng, ChanceExtremes) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ForkIsIndependent) {
  Rng base(29);
  Rng a = base.fork(0);
  Rng b = base.fork(1);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.next() == b.next();
  EXPECT_LT(equal, 3);
}

TEST(Summary, BasicStats) {
  Summary s;
  s.add_all({1, 2, 3, 4, 5});
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(2.5), 1e-12);
}

TEST(Summary, Percentiles) {
  Summary s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_NEAR(s.percentile(0), 1.0, 1e-9);
  EXPECT_NEAR(s.percentile(100), 100.0, 1e-9);
  EXPECT_NEAR(s.percentile(50), 50.5, 1e-9);
}

TEST(Summary, BoxStats) {
  Summary s;
  s.add_all({1, 2, 3, 4, 5, 6, 7, 8, 9});
  const BoxStats b = s.box();
  EXPECT_DOUBLE_EQ(b.median, 5.0);
  EXPECT_DOUBLE_EQ(b.q1, 3.0);
  EXPECT_DOUBLE_EQ(b.q3, 7.0);
  EXPECT_EQ(b.count, 9u);
}

TEST(Summary, EmptyThrowsOnOrderStats) {
  Summary s;
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_THROW(s.min(), std::logic_error);
  EXPECT_THROW(s.percentile(50), std::logic_error);
}

TEST(Cdf, AtAndQuantile) {
  Cdf cdf({1, 2, 2, 3, 10});
  EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(2), 0.6);
  EXPECT_DOUBLE_EQ(cdf.at(100), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 10.0);
}

TEST(Cdf, PointsMonotonic) {
  Cdf cdf({3, 1, 2});
  const auto pts = cdf.points();
  ASSERT_EQ(pts.size(), 3u);
  EXPECT_DOUBLE_EQ(pts.front().first, 1.0);
  EXPECT_DOUBLE_EQ(pts.back().second, 1.0);
}

TEST(StepFunction, FlatInitially) {
  StepFunction f(2.5);
  EXPECT_DOUBLE_EQ(f.at(-100), 2.5);
  EXPECT_DOUBLE_EQ(f.at(100), 2.5);
}

TEST(StepFunction, AddInterval) {
  StepFunction f;
  f.add(10, 20, 3.0);
  EXPECT_DOUBLE_EQ(f.at(9), 0.0);
  EXPECT_DOUBLE_EQ(f.at(10), 3.0);
  EXPECT_DOUBLE_EQ(f.at(19), 3.0);
  EXPECT_DOUBLE_EQ(f.at(20), 0.0);
}

TEST(StepFunction, OverlappingAdds) {
  StepFunction f;
  f.add(0, 10, 1.0);
  f.add(5, 15, 1.0);
  EXPECT_DOUBLE_EQ(f.at(4), 1.0);
  EXPECT_DOUBLE_EQ(f.at(5), 2.0);
  EXPECT_DOUBLE_EQ(f.at(9), 2.0);
  EXPECT_DOUBLE_EQ(f.at(10), 1.0);
  EXPECT_DOUBLE_EQ(f.at(14), 1.0);
  EXPECT_DOUBLE_EQ(f.at(15), 0.0);
}

TEST(StepFunction, MaxOver) {
  StepFunction f;
  f.add(0, 10, 1.0);
  f.add(5, 7, 2.0);
  EXPECT_DOUBLE_EQ(f.max_over(0, 10), 3.0);
  EXPECT_DOUBLE_EQ(f.max_over(0, 5), 1.0);
  EXPECT_DOUBLE_EQ(f.max_over(7, 10), 1.0);
}

TEST(StepFunction, Integral) {
  StepFunction f;
  f.add(0, 10, 2.0);
  EXPECT_DOUBLE_EQ(f.integral(0, 10), 20.0);
  EXPECT_DOUBLE_EQ(f.integral(-5, 5), 10.0);
  EXPECT_DOUBLE_EQ(f.integral(5, 5), 0.0);
  EXPECT_DOUBLE_EQ(f.integral(10, 20), 0.0);
}

TEST(StepFunction, AddFrom) {
  StepFunction f;
  f.add_from(5, 1.5);
  EXPECT_DOUBLE_EQ(f.at(4), 0.0);
  EXPECT_DOUBLE_EQ(f.at(5), 1.5);
  EXPECT_DOUBLE_EQ(f.at(1000000), 1.5);
}

TEST(StepFunction, FirstTimeAbove) {
  StepFunction f;
  f.add(10, 20, 5.0);
  EXPECT_EQ(f.first_time_above(0, 30, 4.0), 10);
  EXPECT_EQ(f.first_time_above(0, 30, 5.0), 30);  // never strictly above
  EXPECT_EQ(f.first_time_above(15, 30, 4.0), 15);
}

TEST(StepFunction, NormalizeRemovesRedundantBreakpoints) {
  StepFunction f;
  f.add(0, 10, 1.0);
  f.add(10, 20, 1.0);  // contiguous equal value
  f.normalize();
  EXPECT_EQ(f.breakpoints().size(), 2u);
  EXPECT_DOUBLE_EQ(f.at(10), 1.0);
  EXPECT_DOUBLE_EQ(f.at(20), 0.0);
}

TEST(StepFunction, RejectsEmptyInterval) {
  StepFunction f;
  EXPECT_THROW(f.add(5, 5, 1.0), std::invalid_argument);
  EXPECT_THROW(f.max_over(5, 5), std::invalid_argument);
  EXPECT_THROW(f.integral(6, 5), std::invalid_argument);
}

TEST(Table, AlignsColumns) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("longer"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(Table, HandlesShortRows) {
  Table t({"a", "b", "c"});
  t.add_row({"1"});
  EXPECT_NO_THROW(t.to_string());
}

TEST(Bar, ScalesToWidth) {
  EXPECT_EQ(bar(10, 10, 10).size(), 10u);
  EXPECT_EQ(bar(5, 10, 10).size(), 5u);
  EXPECT_TRUE(bar(0, 10, 10).empty());
  EXPECT_TRUE(bar(5, 0, 10).empty());
}

TEST(Cli, ParsesEqualsAndSpaceForms) {
  const char* argv[] = {"prog", "--n=30", "--seed", "7", "--verbose"};
  Cli cli(5, argv);
  EXPECT_EQ(cli.get_int("n", 0), 30);
  EXPECT_EQ(cli.get_int("seed", 0), 7);
  EXPECT_TRUE(cli.get_bool("verbose", false));
  EXPECT_EQ(cli.get_int("absent", 42), 42);
}

TEST(Cli, TracksUnusedFlags) {
  const char* argv[] = {"prog", "--used=1", "--typo=2"};
  Cli cli(3, argv);
  (void)cli.get_int("used", 0);
  const auto unused = cli.unused();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

TEST(Cli, RejectsPositionalArgs) {
  const char* argv[] = {"prog", "positional"};
  EXPECT_THROW(Cli(2, argv), std::invalid_argument);
}

TEST(Deadline, DisabledNeverExpires) {
  Deadline d(0);
  EXPECT_FALSE(d.expired());
}

TEST(Deadline, ExpiresQuickly) {
  Deadline d(1e-9);
  // Spin briefly.
  volatile double x = 0;
  for (int i = 0; i < 100000; ++i) x += i;
  EXPECT_TRUE(d.expired());
}

TEST(Stopwatch, MeasuresForward) {
  Stopwatch sw;
  EXPECT_GE(sw.seconds(), 0.0);
}

}  // namespace
}  // namespace chronus::util
