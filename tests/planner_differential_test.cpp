// The differential digest harness for the allocator rewrite: every hot
// path that grew an arena backend (G_T construction, path enumeration,
// both branch-and-bound planners, the whole update service) is replayed
// under CHRONUS_ARENA=off (the verbatim legacy heap code) and under the
// arena backing, and the outputs are held bit-identical — schedules,
// rounds, timed-link ids, enumerated paths, ServiceReport digests and the
// logical() metric slice. The arena may only change *where* the bytes
// live, never *what* the planner computes.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/greedy_scheduler.hpp"
#include "io/trace_io.hpp"
#include "net/generators.hpp"
#include "obs/metrics.hpp"
#include "opt/mutp_bnb.hpp"
#include "opt/order_bnb.hpp"
#include "service/service.hpp"
#include "service/workload.hpp"
#include "timenet/path_enum.hpp"
#include "timenet/time_extended.hpp"
#include "util/arena.hpp"

namespace chronus {
namespace {

using timenet::TimePoint;
using util::ArenaBacking;
using util::ScopedArenaBacking;

/// A timed link flattened to an equality-comparable tuple. Capacity is
/// omitted deliberately: both backends read it off the same base link id,
/// so base-link equality subsumes it.
struct LinkKey {
  net::NodeId u = net::kInvalidNode;
  std::int64_t tu = 0;
  net::NodeId v = net::kInvalidNode;
  std::int64_t tv = 0;
  net::LinkId base = net::kInvalidLink;

  bool operator==(const LinkKey&) const = default;
};

LinkKey key(const timenet::TimedLink& l) {
  return LinkKey{l.from.node, l.from.time.count(), l.to.node,
                 l.to.time.count(), l.base_link};
}

/// Everything one corpus replay produces, flattened for operator==.
struct Transcript {
  std::vector<core::ScheduleStatus> greedy_status;
  std::vector<timenet::UpdateSchedule> greedy;
  std::vector<core::ScheduleStatus> mutp_status;
  std::vector<timenet::UpdateSchedule> mutp;
  std::vector<std::uint64_t> mutp_nodes;
  std::vector<bool> mutp_optimal;
  std::vector<bool> order_feasible;
  std::vector<std::vector<std::vector<net::NodeId>>> rounds;
  std::vector<std::uint64_t> order_nodes;
  std::vector<LinkKey> gt_links;      // id order, then per-slot out order
  std::vector<timenet::TimedPath> paths;
  obs::MetricsSnapshot logical;
};

std::vector<net::UpdateInstance> make_corpus() {
  // The property-test corpus: seeds 800+p, five instances per seed.
  std::vector<net::UpdateInstance> corpus;
  for (int p = 0; p < 5; ++p) {
    util::Rng rng(800 + static_cast<std::uint64_t>(p));
    net::RandomInstanceOptions opt;
    opt.n = 8;
    for (int i = 0; i < 5; ++i) corpus.push_back(net::random_instance(opt, rng));
  }
  return corpus;
}

Transcript replay(const std::vector<net::UpdateInstance>& corpus,
                  ArenaBacking backing) {
  obs::MetricsRegistry reg;
  obs::ScopedMetrics metrics(reg);
  ScopedArenaBacking arena(backing);

  Transcript t;
  for (const net::UpdateInstance& inst : corpus) {
    core::GreedyOptions gopts;
    gopts.record_steps = false;
    const auto plan = core::greedy_schedule(inst, gopts);
    t.greedy_status.push_back(plan.status);
    t.greedy.push_back(plan.schedule);

    const auto m = opt::solve_mutp(inst);
    t.mutp_status.push_back(m.status);
    t.mutp.push_back(m.schedule);
    t.mutp_nodes.push_back(m.nodes_explored);
    t.mutp_optimal.push_back(m.proved_optimal);

    const auto o = opt::solve_order_replacement(inst);
    t.order_feasible.push_back(o.feasible);
    t.rounds.push_back(o.rounds);
    t.order_nodes.push_back(o.nodes_explored);

    // G_T expansion: ids, contents and per-slot CSR out-orders.
    const net::Graph& g = inst.graph();
    const TimePoint t0{0};
    const TimePoint t1{3};
    timenet::TimeExtendedNetwork gt(g, t0, t1);
    for (std::size_t i = 0; i < gt.link_count(); ++i) {
      t.gt_links.push_back(key(gt.link(i)));
    }
    for (std::size_t v = 0; v < g.node_count(); ++v) {
      for (TimePoint tt = t0; tt <= t1; tt += 1) {
        for (const timenet::TimedLink& l :
             gt.out_links(static_cast<net::NodeId>(v), tt)) {
          t.gt_links.push_back(key(l));
        }
      }
    }

    // Path enumeration over the instance's own endpoints.
    timenet::EnumerateOptions popts;
    popts.t_end = TimePoint{6};
    popts.max_paths = 2000;
    const auto paths = timenet::enumerate_timed_paths(
        g, inst.p_init().front(), TimePoint{0}, inst.p_init().back(), popts);
    t.paths.insert(t.paths.end(), paths.begin(), paths.end());
  }
  t.logical = reg.snapshot().logical();
  return t;
}

/// The arena runs additionally flush their allocator telemetry
/// (arena.gt.*, arena.pathenum.*, arena.mutp.*, arena.order.*), which the
/// heap runs by definition cannot emit; everything else must match.
obs::MetricsSnapshot drop_arena_counters(obs::MetricsSnapshot s) {
  for (auto it = s.counters.begin(); it != s.counters.end();) {
    if (it->first.rfind("arena.", 0) == 0) {
      it = s.counters.erase(it);
    } else {
      ++it;
    }
  }
  return s;
}

std::uint64_t arena_counter_total(const obs::MetricsSnapshot& s) {
  std::uint64_t total = 0;
  for (const auto& [name, value] : s.counters) {
    if (name.rfind("arena.", 0) == 0) total += value;
  }
  return total;
}

TEST(ArenaDifferential, CorpusReplaysBitIdenticallyAcrossBackings) {
  const auto corpus = make_corpus();
  const Transcript heap = replay(corpus, ArenaBacking::kHeap);
  const Transcript arena = replay(corpus, ArenaBacking::kArena);

  EXPECT_EQ(heap.greedy_status, arena.greedy_status);
  EXPECT_EQ(heap.greedy, arena.greedy);
  EXPECT_EQ(heap.mutp_status, arena.mutp_status);
  EXPECT_EQ(heap.mutp, arena.mutp);
  EXPECT_EQ(heap.mutp_nodes, arena.mutp_nodes);
  EXPECT_EQ(heap.mutp_optimal, arena.mutp_optimal);
  EXPECT_EQ(heap.order_feasible, arena.order_feasible);
  EXPECT_EQ(heap.rounds, arena.rounds);
  EXPECT_EQ(heap.order_nodes, arena.order_nodes);
  EXPECT_EQ(heap.gt_links, arena.gt_links);
  EXPECT_EQ(heap.paths, arena.paths);

  // Logical metric slices match once the arena's own telemetry — absent
  // by construction from the heap run — is set aside.
  EXPECT_EQ(arena_counter_total(heap.logical), 0u);
  EXPECT_GT(arena_counter_total(arena.logical), 0u);
  EXPECT_EQ(heap.logical, drop_arena_counters(arena.logical));
}

TEST(ArenaDifferential, ArenaReplayIsSelfDeterministic) {
  // Bump-vs-bump: two arena replays agree on everything *including* the
  // arena.* telemetry, which is a pure function of the allocation
  // sequence (no addresses, no clocks).
  const auto corpus = make_corpus();
  const Transcript once = replay(corpus, ArenaBacking::kArena);
  const Transcript twice = replay(corpus, ArenaBacking::kArena);
  EXPECT_EQ(once.mutp, twice.mutp);
  EXPECT_EQ(once.rounds, twice.rounds);
  EXPECT_EQ(once.logical, twice.logical);
  EXPECT_GT(arena_counter_total(once.logical), 0u);
}

std::string run_digest(const service::ServiceTrace& trace, int workers,
                       ArenaBacking backing) {
  ScopedArenaBacking arena(backing);
  service::ServiceOptions opts;
  opts.workers = workers;
  return service::UpdateService(trace.graph, opts).run(trace.requests).digest();
}

TEST(ArenaDifferential, WorkloadDigestMatchesAcrossBackings) {
  // The 200-request synthetic workload (the bench driver's default) end
  // to end through the service: admission, worker-pool planning, timed
  // execution. One digest, both backings.
  const service::ServiceTrace trace = service::make_workload({});
  ASSERT_EQ(trace.requests.size(), 200u);
  const std::string heap = run_digest(trace, 4, ArenaBacking::kHeap);
  const std::string arena = run_digest(trace, 4, ArenaBacking::kArena);
  EXPECT_EQ(heap, arena);

  // And the pool-size invariance holds in arena mode too: the arenas are
  // per-request, never shared across workers.
  EXPECT_EQ(run_digest(trace, 1, ArenaBacking::kArena), arena);
}

TEST(ArenaDifferential, RecordedTraceDigestMatchesAcrossBackings) {
  const service::ServiceTrace trace =
      io::read_trace_file(std::string(CHRONUS_TESTDATA_DIR) + "/sample.trace");
  ASSERT_FALSE(trace.requests.empty());
  EXPECT_EQ(run_digest(trace, 4, ArenaBacking::kHeap),
            run_digest(trace, 4, ArenaBacking::kArena));
}

}  // namespace
}  // namespace chronus
