// Tests for the Dionysus-style dynamic scheduler baseline.
#include <gtest/gtest.h>

#include "baselines/dionysus.hpp"
#include "net/generators.hpp"
#include "timenet/verifier.hpp"

namespace chronus::baselines {
namespace {

using net::NodeId;
using net::Path;

TEST(Dionysus, CompletesFig1) {
  const auto inst = net::fig1_instance();
  util::Rng rng(51);
  const DionysusExecution exec = dionysus_execute(inst, rng);
  ASSERT_TRUE(exec.complete) << exec.message;
  EXPECT_EQ(exec.realized.size(), 5u);
  for (const auto& [v, done] : exec.realized.entries()) {
    EXPECT_GE(done, *exec.issued.at(v) + 1);  // latency is at least one unit
  }
}

TEST(Dionysus, RespectsCapacityAtIssueGranularity) {
  // v3 (new edge onto v2->v6's upstream) can only be issued after the
  // capacity of its target link is free; with unit capacities the issue
  // order serializes exactly like the capacity ledger dictates: v3's new
  // link (v3->v2) is initially free, but v1's new link (v1->v4) is too —
  // the ledger alone never over-commits any single link.
  const auto inst = net::fig1_instance();
  util::Rng rng(52);
  const DionysusExecution exec = dionysus_execute(inst, rng);
  ASSERT_TRUE(exec.complete);
  // Reconstruct the ledger over issue/confirm events and assert it never
  // goes negative.
  const net::Graph& g = inst.graph();
  std::map<timenet::TimePoint, std::vector<NodeId>> issues, confirms;
  for (const auto& [v, t] : exec.issued.entries()) issues[t].push_back(v);
  for (const auto& [v, t] : exec.realized.entries()) confirms[t].push_back(v);
  std::map<net::LinkId, double> free_cap;
  for (net::LinkId id = 0; id < g.link_count(); ++id) {
    free_cap[id] = g.link(id).capacity.value();
  }
  for (const auto id : net::path_links(g, inst.p_init())) {
    free_cap[id] -= inst.demand().value();
  }
  timenet::TimePoint horizon = exec.realized.last_time();
  for (timenet::TimePoint t{}; t <= horizon; ++t) {
    for (const NodeId v : confirms[t]) {
      free_cap[*g.find_link(v, *inst.old_next(v))] += inst.demand().value();
    }
    for (const NodeId v : issues[t]) {
      auto& c = free_cap[*g.find_link(v, *inst.new_next(v))];
      c -= inst.demand().value();
      EXPECT_GE(c, -1e-9);
    }
  }
}

TEST(Dionysus, DetectsCapacityDeadlock) {
  // The no-headroom "swap" within one flow: old s->a->t, new s->b->t where
  // b->t is saturated by... a single flow cannot deadlock itself, so use
  // the overtaking instance whose new link is permanently occupied: give
  // the flow a new out-link with zero headroom held by the *old* path.
  net::Graph g;
  g.add_nodes(4);  // s a b t
  g.add_link(0, 1, net::Capacity{1.0}, 1);
  g.add_link(1, 3, net::Capacity{1.0}, 1);
  g.add_link(0, 2, net::Capacity{1.0}, 1);
  g.add_link(2, 1, net::Capacity{1.0}, 1);  // new route rejoins at a; a->t stays shared
  const auto inst = net::UpdateInstance::from_paths(
      g, Path{0, 1, 3}, Path{0, 2, 1, 3}, net::Demand{1.0});
  util::Rng rng(53);
  // Here every link needed is either free or released in time: completes.
  const auto exec = dionysus_execute(inst, rng);
  EXPECT_TRUE(exec.complete);
}

TEST(Dionysus, CapacityAwareButDelayBlind) {
  // Across seeds, Dionysus causes strictly fewer congested time-extended
  // links than OR-style capacity-oblivious interleavings would, but it is
  // not clean: confirmations free capacity one propagation delay before
  // the drain actually clears.
  util::Rng rng(54);
  net::RandomInstanceOptions opt;
  opt.n = 14;
  int runs = 0;
  int dirty = 0;
  for (int i = 0; i < 15; ++i) {
    const auto inst = net::random_instance(opt, rng);
    const auto exec = dionysus_execute(inst, rng);
    if (!exec.complete) continue;
    ++runs;
    const auto report = timenet::verify_transition(inst, exec.realized);
    dirty += !report.ok();
  }
  ASSERT_GT(runs, 5);
  EXPECT_GT(dirty, 0);  // the delay blindness shows up
}

TEST(Dionysus, DeterministicPerSeed) {
  const auto inst = net::fig1_instance();
  util::Rng a(55), b(55);
  const auto ea = dionysus_execute(inst, a);
  const auto eb = dionysus_execute(inst, b);
  EXPECT_EQ(ea.realized, eb.realized);
  EXPECT_EQ(ea.issued, eb.issued);
}

}  // namespace
}  // namespace chronus::baselines
