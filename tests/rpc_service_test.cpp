// Tests for the rpc front-end of the update service: IntakeQueue
// backpressure semantics, run_intake ≡ run digest equality, loopback
// round-trips through both codecs, and the malformed-input contract —
// a bad frame is a structured per-session error that never disturbs the
// other sessions and never surfaces as a ContractViolation.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <string>
#include <thread>
#include <vector>

#include "rpc/client.hpp"
#include "rpc/codec.hpp"
#include "rpc/load_driver.hpp"
#include "rpc/server.hpp"
#include "service/intake_queue.hpp"
#include "service/service.hpp"
#include "service/workload.hpp"
#include "util/rng.hpp"

namespace chronus::rpc {
namespace {

using service::IntakeQueue;

service::UpdateRequest small_request(std::uint64_t id) {
  service::UpdateRequest r;
  r.id = id;
  r.p_init = net::Path{0, 1, 2};
  r.p_fin = net::Path{0, 3, 2};
  r.demand = net::Demand{1.0};
  r.arrival = static_cast<sim::SimTime>(id) * 1000;
  return r;
}

// ---------------------------------------------------------------------------
// IntakeQueue: the transport-agnostic backpressure contract.

TEST(IntakeQueueTest, SoftLimitDefersBeforeTheHardWall) {
  IntakeQueue q(/*capacity=*/4, /*soft_limit=*/2);
  EXPECT_EQ(q.try_push(small_request(1)), IntakeQueue::Push::kAccepted);
  EXPECT_EQ(q.try_push(small_request(2)), IntakeQueue::Push::kAccepted);
  // Depth reached the soft limit: non-blocking producers are deferred
  // even though two capacity slots remain.
  EXPECT_EQ(q.try_push(small_request(3)), IntakeQueue::Push::kDeferred);
  EXPECT_EQ(q.depth(), 2u);
  EXPECT_FALSE(q.saturated());

  const auto batch = q.take_batch();
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].id, 1u);
  EXPECT_EQ(batch[1].id, 2u);
  // Drained: the deferred producer's retry is accepted.
  EXPECT_EQ(q.try_push(small_request(3)), IntakeQueue::Push::kAccepted);
}

TEST(IntakeQueueTest, ZeroSoftLimitMeansDeferralOnlyAtCapacity) {
  IntakeQueue q(/*capacity=*/2);
  EXPECT_EQ(q.soft_limit(), 2u);
  EXPECT_EQ(q.try_push(small_request(1)), IntakeQueue::Push::kAccepted);
  EXPECT_EQ(q.try_push(small_request(2)), IntakeQueue::Push::kAccepted);
  EXPECT_TRUE(q.saturated());
  EXPECT_EQ(q.try_push(small_request(3)), IntakeQueue::Push::kDeferred);
}

TEST(IntakeQueueTest, CloseRefusesProducersAndWakesConsumers) {
  IntakeQueue q(4);
  EXPECT_EQ(q.try_push(small_request(1)), IntakeQueue::Push::kAccepted);
  q.close();
  q.close();  // idempotent
  EXPECT_TRUE(q.closed());
  EXPECT_EQ(q.try_push(small_request(2)), IntakeQueue::Push::kClosed);
  EXPECT_FALSE(q.push_wait(small_request(3)));
  // The element queued before the close still drains...
  EXPECT_EQ(q.wait_batch().size(), 1u);
  // ...and closed-and-empty unblocks immediately with an empty batch.
  EXPECT_TRUE(q.wait_batch().empty());
}

TEST(IntakeQueueTest, PushWaitBlocksUntilTheConsumerDrains) {
  IntakeQueue q(/*capacity=*/1);
  EXPECT_TRUE(q.push_wait(small_request(1)));
  std::thread producer([&q] {
    // Saturated: parks until take_batch below makes room.
    EXPECT_TRUE(q.push_wait(small_request(2)));
    q.close();
  });
  std::vector<service::UpdateRequest> got;
  while (got.size() < 2) {
    for (auto& r : q.wait_batch()) got.push_back(std::move(r));
  }
  producer.join();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].id, 1u);
  EXPECT_EQ(got[1].id, 2u);
}

TEST(IntakeQueueTest, WaitBatchBlocksUntilDataArrives) {
  IntakeQueue q(4);
  std::thread producer([&q] {
    EXPECT_TRUE(q.push_wait(small_request(7)));
  });
  const auto batch = q.wait_batch();
  producer.join();
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].id, 7u);
}

// ---------------------------------------------------------------------------
// run_intake: any producer interleaving digests identically to run().

TEST(RunIntakeTest, WireOrderIndependenceMatchesVectorRun) {
  service::WorkloadOptions wopt;
  wopt.requests = 40;
  wopt.seed = 11;
  const service::ServiceTrace trace = service::make_workload(wopt);

  service::ServiceOptions sopt;
  sopt.workers = 2;
  const std::string direct =
      service::UpdateService(trace.graph, sopt).run(trace.requests).digest();

  // Feed the same requests through the intake queue in a shuffled order
  // from a producer thread; the dispatcher's (arrival, id) sort makes the
  // digest independent of both the transport and the arrival interleaving.
  std::vector<service::UpdateRequest> shuffled = trace.requests;
  util::Rng rng(99);
  rng.shuffle(shuffled);

  IntakeQueue intake(/*capacity=*/8);
  std::thread producer([&intake, &shuffled] {
    for (auto& r : shuffled) ASSERT_TRUE(intake.push_wait(std::move(r)));
    intake.close();
  });
  service::UpdateService svc(trace.graph, sopt);
  const service::ServiceReport rep = svc.run_intake(intake);
  producer.join();

  EXPECT_EQ(rep.digest(), direct);
  EXPECT_EQ(rep.total(), trace.requests.size());
}

// ---------------------------------------------------------------------------
// Loopback server: both codecs deliver the in-process records and digest.

TEST(RpcServerTest, LoopbackBothCodecsMatchInProcessRun) {
  service::WorkloadOptions wopt;
  wopt.requests = 30;
  wopt.seed = 21;
  const service::ServiceTrace trace = service::make_workload(wopt);

  service::ServiceOptions sopt;
  sopt.workers = 2;
  const service::ServiceReport direct =
      service::UpdateService(trace.graph, sopt).run(trace.requests);

  for (Codec codec : {Codec::kBinary, Codec::kJson}) {
    ServerOptions opts;
    opts.intake_capacity = 64;  // > requests: a single planning round
    opts.service = sopt;
    Server server(trace.graph, opts);
    server.start();

    LoadOptions lopt;
    lopt.port = server.port();
    lopt.codec = codec;
    lopt.connections = 4;
    const LoadResult load = run_load(trace.graph, trace.requests, lopt);
    server.join();

    ASSERT_TRUE(load.ok) << to_string(codec) << ": " << load.error;
    EXPECT_EQ(load.acked, trace.requests.size());
    EXPECT_EQ(load.rejected, 0u);
    EXPECT_EQ(load.reports, 4u);
    ASSERT_EQ(load.records.size(), direct.records.size());
    for (std::size_t i = 0; i < load.records.size(); ++i) {
      EXPECT_EQ(load.records[i], to_wire(direct.records[i])) << "record " << i;
    }
    for (const std::string& digest : load.digests) {
      EXPECT_EQ(digest, direct.digest()) << to_string(codec);
    }
    const auto rounds = server.round_reports();
    ASSERT_EQ(rounds.size(), 1u);
    EXPECT_EQ(rounds[0].digest(), direct.digest());
    EXPECT_EQ(server.stats().accepted, trace.requests.size());
  }
}

TEST(RpcServerTest, DrainWithNoTrafficShutsDownCleanly) {
  net::Graph g;
  g.add_node("a");
  g.add_node("b");
  g.add_link(0, 1, net::Capacity{1.0}, 1);
  Server server(g);
  server.start();
  EXPECT_NE(server.port(), 0);
  server.drain();
  server.drain();  // idempotent
  server.join();
  EXPECT_EQ(server.stats().sessions, 0u);
  EXPECT_EQ(server.stats().rounds, 0u);
  EXPECT_TRUE(server.round_reports().empty());
}

// ---------------------------------------------------------------------------
// Raw-socket protocol conformance: malformed input is a structured,
// per-session error.

int dial(std::uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  // Wall-clock safety net only — a correct server answers immediately.
  timeval tv{};
  tv.tv_sec = 30;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  return fd;
}

void send_all(int fd, const std::string& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    ASSERT_GT(n, 0);
    off += static_cast<std::size_t>(n);
  }
}

/// Reads server messages until EOF (or a decode error on our side, which
/// would mean the server sent garbage — fails the test).
std::vector<Message> read_until_eof(int fd, Codec codec) {
  Decoder dec(codec);
  std::vector<Message> got;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    EXPECT_GE(n, 0) << "recv timed out or failed";
    if (n <= 0) break;
    dec.feed(std::string_view(chunk, static_cast<std::size_t>(n)));
    for (;;) {
      Message m;
      std::string err;
      const Decoder::Result r = dec.next(&m, &err);
      if (r == Decoder::Result::kNeedMore) break;
      EXPECT_EQ(r, Decoder::Result::kMessage) << err;
      if (r != Decoder::Result::kMessage) return got;
      got.push_back(m);
    }
  }
  EXPECT_FALSE(dec.has_partial()) << "server closed mid-frame";
  return got;
}

std::string json_line(const Message& m) { return encode(Codec::kJson, m); }

Message hello(std::uint32_t version = kProtocolVersion) {
  Message m;
  m.type = MsgType::kHello;
  m.version = version;
  return m;
}

Message submit_msg(std::uint64_t id, std::vector<std::string> init,
                   std::vector<std::string> fin, double demand_units = 1.0) {
  Message m;
  m.type = MsgType::kSubmit;
  m.submit.id = id;
  m.submit.name = "r" + std::to_string(id);
  m.submit.demand = net::Demand{demand_units};
  m.submit.init = std::move(init);
  m.submit.fin = std::move(fin);
  return m;
}

net::Graph named_diamond() {
  net::Graph g;
  const net::NodeId s = g.add_node("s");
  const net::NodeId m = g.add_node("m");
  const net::NodeId t = g.add_node("t");
  const net::NodeId b = g.add_node("b");
  g.add_link(s, m, net::Capacity{4.0}, 1);
  g.add_link(m, t, net::Capacity{4.0}, 1);
  g.add_link(s, b, net::Capacity{4.0}, 1);
  g.add_link(b, t, net::Capacity{4.0}, 1);
  return g;
}

TEST(RpcProtocolTest, PerRequestRejectionsAndDuplicateIds) {
  Server server(named_diamond());
  server.start();
  const int fd = dial(server.port());

  std::string out;
  out += json_line(hello());
  out += json_line(submit_msg(1, {"s", "m", "t"}, {"s", "b", "t"}));
  out += json_line(submit_msg(1, {"s", "m", "t"}, {"s", "b", "t"}));  // dup
  out += json_line(submit_msg(2, {"s", "ghost", "t"}, {"s", "b", "t"}));
  out += json_line(submit_msg(3, {"s", "m", "t"}, {"s", "b", "t"}, 0.0));
  Message done;
  done.type = MsgType::kDone;
  out += json_line(done);
  send_all(fd, out);

  const std::vector<Message> replies = read_until_eof(fd, Codec::kJson);
  ::close(fd);
  server.join();

  // hello_ack, ack(1), rejected(1 dup), rejected(2 ghost), rejected(3
  // demand), record(1), report.
  ASSERT_EQ(replies.size(), 7u);
  EXPECT_EQ(replies[0].type, MsgType::kHelloAck);
  EXPECT_EQ(replies[1].type, MsgType::kAck);
  EXPECT_EQ(replies[1].id, 1u);
  EXPECT_EQ(replies[2].type, MsgType::kRejected);
  EXPECT_NE(replies[2].text.find("duplicate"), std::string::npos);
  EXPECT_EQ(replies[3].type, MsgType::kRejected);
  EXPECT_NE(replies[3].text.find("ghost"), std::string::npos);
  EXPECT_EQ(replies[4].type, MsgType::kRejected);
  EXPECT_EQ(replies[5].type, MsgType::kRecord);
  EXPECT_EQ(replies[5].record.id, 1u);
  EXPECT_EQ(replies[6].type, MsgType::kReport);
  EXPECT_EQ(replies[6].report.requests, 4u);  // every submit frame, incl. bad
  EXPECT_EQ(replies[6].report.records, 1u);
  EXPECT_FALSE(replies[6].report.digest.empty());

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.accepted, 1u);
  EXPECT_EQ(stats.rejected, 3u);
  EXPECT_EQ(stats.protocol_errors, 0u);  // per-request errors, not fatal
}

TEST(RpcProtocolTest, MalformedSessionFailsAloneOthersKeepWorking) {
  const net::Graph g = named_diamond();
  Server server(g);
  server.start();

  // Session 1: valid handshake, then an unknown message type — the server
  // must answer with a structured kError and close only this session.
  {
    const int fd = dial(server.port());
    send_all(fd, json_line(hello()) + "{\"type\":\"warp\",\"id\":9}\n");
    const std::vector<Message> replies = read_until_eof(fd, Codec::kJson);
    ::close(fd);
    ASSERT_EQ(replies.size(), 2u);
    EXPECT_EQ(replies[0].type, MsgType::kHelloAck);
    EXPECT_EQ(replies[1].type, MsgType::kError);
    EXPECT_NE(replies[1].text.find("unknown message type"), std::string::npos);
  }

  // Session 2: first byte matches neither codec — the server cannot even
  // pick an encoding for kError; it just closes.
  {
    const int fd = dial(server.port());
    send_all(fd, "GET / HTTP/1.0\r\n\r\n");
    const std::vector<Message> replies = read_until_eof(fd, Codec::kJson);
    ::close(fd);
    EXPECT_TRUE(replies.empty());
  }

  // Session 3: submit before hello is session-fatal.
  {
    const int fd = dial(server.port());
    send_all(fd, json_line(submit_msg(5, {"s", "m", "t"}, {"s", "b", "t"})));
    const std::vector<Message> replies = read_until_eof(fd, Codec::kJson);
    ::close(fd);
    ASSERT_EQ(replies.size(), 1u);
    EXPECT_EQ(replies[0].type, MsgType::kError);
    EXPECT_NE(replies[0].text.find("expected hello"), std::string::npos);
  }

  // Session 4: wrong protocol version.
  {
    const int fd = dial(server.port());
    send_all(fd, json_line(hello(99)));
    const std::vector<Message> replies = read_until_eof(fd, Codec::kJson);
    ::close(fd);
    ASSERT_EQ(replies.size(), 1u);
    EXPECT_EQ(replies[0].type, MsgType::kError);
    EXPECT_NE(replies[0].text.find("version"), std::string::npos);
  }

  // The server is undisturbed: a well-behaved client still gets full
  // service after four hostile sessions.
  std::vector<service::UpdateRequest> reqs;
  for (std::uint64_t id = 1; id <= 3; ++id) reqs.push_back(small_request(id));
  const LoadResult load = Client("127.0.0.1", server.port()).run(g, reqs);
  server.join();

  ASSERT_TRUE(load.ok) << load.error;
  EXPECT_EQ(load.acked, 3u);
  EXPECT_EQ(load.records.size(), 3u);
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.sessions, 5u);
  EXPECT_EQ(stats.protocol_errors, 4u);
  EXPECT_EQ(stats.accepted, 3u);
}

TEST(RpcProtocolTest, BinaryGarbageAfterMagicIsAStructuredError) {
  Server server(named_diamond());
  server.start();
  const int fd = dial(server.port());

  // Valid magic + hello, then a frame with an unknown tag: the kError
  // reply arrives on the binary codec before the close.
  std::string out(kBinaryMagic);
  out += encode(Codec::kBinary, hello());
  out += std::string("\x05\x00\x00\x00\x7f"
                     "ABCD",
                     9);
  send_all(fd, out);
  const std::vector<Message> replies = read_until_eof(fd, Codec::kBinary);
  ::close(fd);
  server.join();

  ASSERT_EQ(replies.size(), 2u);
  EXPECT_EQ(replies[0].type, MsgType::kHelloAck);
  EXPECT_EQ(replies[1].type, MsgType::kError);
  EXPECT_NE(replies[1].text.find("unknown frame tag"), std::string::npos);
  EXPECT_EQ(server.stats().protocol_errors, 1u);
}

}  // namespace
}  // namespace chronus::rpc
