// Tests for the structured/random topologies and reroute generation over
// arbitrary graphs.
#include <gtest/gtest.h>

#include "core/greedy_scheduler.hpp"
#include "net/topologies.hpp"
#include "timenet/verifier.hpp"

namespace chronus::net {
namespace {

TEST(FatTreeT, K4Shape) {
  const FatTree ft = fat_tree(4, net::Capacity{10.0});
  EXPECT_EQ(ft.core.size(), 4u);
  EXPECT_EQ(ft.aggregation.size(), 4u);
  EXPECT_EQ(ft.edge.size(), 4u);
  // 4 pods x (2 edge + 2 agg) + 4 cores = 20 switches.
  EXPECT_EQ(ft.graph.node_count(), 20u);
  // Per pod: 4 edge-agg duplex pairs; per pod 4 agg-core duplex pairs.
  EXPECT_EQ(ft.graph.link_count(), 2u * (4 * 4 + 4 * 4));
  // Every edge switch reaches every other pod's edge switch.
  const auto p = shortest_path(ft.graph, ft.edge[0][0], ft.edge[3][1]);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->size(), 5u);  // edge-agg-core-agg-edge
}

TEST(FatTreeT, RejectsOddK) {
  EXPECT_THROW(fat_tree(3, net::Capacity{1.0}), std::invalid_argument);
  EXPECT_THROW(fat_tree(0, net::Capacity{1.0}), std::invalid_argument);
}

TEST(WaxmanT, ConnectedAndDeterministic) {
  WaxmanOptions opt;
  opt.n = 30;
  util::Rng a(5), b(5);
  const Graph ga = waxman(opt, a);
  const Graph gb = waxman(opt, b);
  EXPECT_EQ(ga.link_count(), gb.link_count());
  // Connectivity: every node reachable from node 0.
  for (NodeId v = 1; v < ga.node_count(); ++v) {
    EXPECT_TRUE(shortest_path(ga, 0, v).has_value()) << v;
  }
}

TEST(WaxmanT, DelaysWithinBounds) {
  WaxmanOptions opt;
  opt.n = 25;
  opt.max_delay = 4;
  util::Rng rng(6);
  const Graph g = waxman(opt, rng);
  for (LinkId id = 0; id < g.link_count(); ++id) {
    EXPECT_GE(g.link(id).delay, 1);
    EXPECT_LE(g.link(id).delay, 4);
  }
}

TEST(GridT, Shape) {
  const Graph g = grid(3, 2, net::Capacity{1.0}, 1);
  EXPECT_EQ(g.node_count(), 6u);
  // Horizontal: 2 per row x 2 rows; vertical: 3; all duplex.
  EXPECT_EQ(g.link_count(), 2u * (2 * 2 + 3));
  EXPECT_TRUE(g.has_link(0, 1));
  EXPECT_TRUE(g.has_link(1, 0));
  EXPECT_TRUE(g.has_link(0, 3));
  EXPECT_FALSE(g.has_link(0, 4));
}

TEST(ShortestPathT, PicksMinimumDelay) {
  Graph g;
  g.add_nodes(4);
  g.add_link(0, 1, net::Capacity{1.0}, 5);
  g.add_link(0, 2, net::Capacity{1.0}, 1);
  g.add_link(2, 3, net::Capacity{1.0}, 1);
  g.add_link(1, 3, net::Capacity{1.0}, 1);
  const auto p = shortest_path(g, 0, 3);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(*p, (Path{0, 2, 3}));
}

TEST(ShortestPathT, UnreachableIsNullopt) {
  Graph g;
  g.add_nodes(3);
  g.add_link(0, 1, net::Capacity{1.0}, 1);
  EXPECT_FALSE(shortest_path(g, 0, 2).has_value());
  EXPECT_FALSE(shortest_path(g, 1, 0).has_value());
}

TEST(RandomRerouteT, ProducesValidInstances) {
  WaxmanOptions wopt;
  wopt.n = 24;
  util::Rng rng(7);
  const Graph g = waxman(wopt, rng);
  int produced = 0;
  for (int i = 0; i < 20; ++i) {
    const NodeId src = static_cast<NodeId>(rng.index(g.node_count()));
    NodeId dst = src;
    while (dst == src) dst = static_cast<NodeId>(rng.index(g.node_count()));
    const auto inst = random_reroute(g, src, dst, net::Demand{1.0}, rng);
    if (!inst) continue;
    ++produced;
    EXPECT_TRUE(inst->p_init().is_simple());
    EXPECT_TRUE(inst->p_fin().is_simple());
    EXPECT_NE(inst->p_init(), inst->p_fin());
    EXPECT_EQ(inst->p_init().front(), src);
    EXPECT_EQ(inst->p_fin().back(), dst);
    EXPECT_TRUE(path_exists_in(inst->graph(), inst->p_fin()));
  }
  EXPECT_GT(produced, 10);
}

TEST(RandomRerouteT, SchedulableOnFatTree) {
  // Moving a pod-to-pod aggregate between core routes: the bread-and-
  // butter DCN reroute. The scheduler should handle most of them.
  const FatTree ft = fat_tree(4, net::Capacity{2.0});
  util::Rng rng(8);
  int feasible = 0;
  int produced = 0;
  for (int i = 0; i < 15; ++i) {
    const auto inst =
        random_reroute(ft.graph, ft.edge[0][0], ft.edge[2][1], net::Demand{1.0}, rng);
    if (!inst) continue;
    ++produced;
    const auto plan = core::greedy_schedule(*inst);
    if (plan.feasible()) {
      ++feasible;
      EXPECT_TRUE(timenet::verify_transition(*inst, plan.schedule).ok());
    }
  }
  EXPECT_GT(produced, 5);
  EXPECT_GT(feasible, produced / 2);
}

TEST(RandomRerouteT, NulloptWhenNoAlternative) {
  // A bare line has exactly one path; rerouting is impossible.
  Graph g;
  g.add_nodes(3);
  g.add_link(0, 1, net::Capacity{1.0}, 1);
  g.add_link(1, 2, net::Capacity{1.0}, 1);
  util::Rng rng(9);
  EXPECT_FALSE(random_reroute(g, 0, 2, net::Demand{1.0}, rng).has_value());
}

}  // namespace
}  // namespace chronus::net
