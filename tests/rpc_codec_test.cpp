// Tests for the rpc wire codecs: encode/decode round-trips for every
// message type under both encodings (including bit-exact doubles), the
// incremental splitter down to byte-at-a-time feeds, and the defensive
// path — every seeded bad-frame fixture under testdata/rpc must yield a
// structured decoder error (sticky poison), never an exception or a
// ContractViolation.
#include <gtest/gtest.h>

#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "net/graph.hpp"
#include "rpc/codec.hpp"
#include "rpc/wire.hpp"
#include "util/rng.hpp"

namespace chronus::rpc {
namespace {

std::string fixture(const std::string& name) {
  const std::string path = std::string(CHRONUS_TESTDATA_DIR) + "/rpc/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Strips the 4-byte stream magic a binary fixture opens with; the
/// session's codec sniff consumes it before the Decoder ever runs.
std::string strip_magic(std::string bytes) {
  EXPECT_GE(bytes.size(), kBinaryMagic.size());
  EXPECT_EQ(bytes.substr(0, kBinaryMagic.size()), kBinaryMagic);
  return bytes.substr(kBinaryMagic.size());
}

/// One deterministic sample of every message type, with awkward strings
/// (escapes, control bytes, UTF-8) and doubles that don't round-trip
/// through short decimal forms.
std::vector<Message> sample_messages() {
  std::vector<Message> msgs;

  Message hello;
  hello.type = MsgType::kHello;
  hello.version = kProtocolVersion;
  msgs.push_back(hello);

  Message hello_ack;
  hello_ack.type = MsgType::kHelloAck;
  hello_ack.version = 7;
  msgs.push_back(hello_ack);

  Message submit;
  submit.type = MsgType::kSubmit;
  submit.submit.id = 0xdeadbeefcafe0001ULL;
  submit.submit.name = "flow \"7\"\n\ttab";
  submit.submit.demand = net::Demand{1.0 / 3.0};
  submit.submit.arrival = 123456789;
  submit.submit.deadline = 987654321;
  submit.submit.priority = -3;
  submit.submit.init = {"s0", "core\x01", "t0"};
  submit.submit.fin = {"s0", "caf\xc3\xa9", "t0"};
  msgs.push_back(submit);

  Message done;
  done.type = MsgType::kDone;
  msgs.push_back(done);

  Message ack;
  ack.type = MsgType::kAck;
  ack.id = 42;
  msgs.push_back(ack);

  Message deferred;
  deferred.type = MsgType::kDeferred;
  deferred.id = 43;
  msgs.push_back(deferred);

  Message rejected;
  rejected.type = MsgType::kRejected;
  rejected.id = 44;
  rejected.text = "unknown node 'ghost' in init";
  msgs.push_back(rejected);

  Message record;
  record.type = MsgType::kRecord;
  record.record.id = 45;
  record.record.status = "completed";
  record.record.arrival = 1;
  record.record.admitted = 2;
  record.record.completed = 3;
  record.record.defers = 4;
  record.record.joint = true;
  record.record.batch = 5;
  record.record.plan_span = -6;
  record.record.exec_duration = 7;
  record.record.retries = 8;
  record.record.faults = 9;
  record.record.degradation = "greedy-only";
  record.record.plan_verified = true;
  record.record.run_verified = false;
  record.record.violations = 10;
  record.record.message = "late\\slash";
  msgs.push_back(record);

  Message report;
  report.type = MsgType::kReport;
  report.report.requests = 200;
  report.report.records = 200;
  report.report.digest = "c0ffee00";
  msgs.push_back(report);

  Message error;
  error.type = MsgType::kError;
  error.text = "frame length 16777216 exceeds limit 1048576";
  msgs.push_back(error);

  return msgs;
}

Message decode_one(Codec c, const std::string& bytes) {
  Decoder dec(c);
  dec.feed(bytes);
  Message out;
  std::string err;
  const Decoder::Result r = dec.next(&out, &err);
  EXPECT_EQ(r, Decoder::Result::kMessage) << err;
  EXPECT_FALSE(dec.has_partial());
  return out;
}

TEST(Codec, SniffsBinaryAndJson) {
  Codec c;
  EXPECT_TRUE(sniff_codec('C', &c));
  EXPECT_EQ(c, Codec::kBinary);
  EXPECT_TRUE(sniff_codec('{', &c));
  EXPECT_EQ(c, Codec::kJson);
  EXPECT_FALSE(sniff_codec('G', &c));
  EXPECT_FALSE(sniff_codec('\0', &c));
  EXPECT_FALSE(sniff_codec('\n', &c));
}

TEST(Codec, RoundTripsEveryMessageTypeBothCodecs) {
  for (const Message& m : sample_messages()) {
    for (Codec c : {Codec::kBinary, Codec::kJson}) {
      const std::string bytes = encode(c, m);
      EXPECT_EQ(decode_one(c, bytes), m)
          << to_string(m.type) << " over " << to_string(c);
    }
  }
}

TEST(Codec, JsonLinesAreNewlineTerminatedObjects) {
  for (const Message& m : sample_messages()) {
    const std::string line = encode(Codec::kJson, m);
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '\n');
    // One line per message: no embedded raw newlines.
    EXPECT_EQ(line.find('\n'), line.size() - 1);
  }
}

TEST(Codec, PropertyRandomSubmitsRoundTripBitExactly) {
  util::Rng rng(20260808);
  for (int trial = 0; trial < 200; ++trial) {
    Message m;
    m.type = MsgType::kSubmit;
    m.submit.id = rng.next();
    m.submit.name = "r" + std::to_string(rng.uniform_int(0, 1 << 20));
    // Awkward but finite doubles: uniform mantissas over a wide scale.
    m.submit.demand =
        net::Demand{rng.uniform(1e-9, 1.0) * static_cast<double>(1u << rng.index(20))};
    m.submit.arrival = rng.uniform_int(0, 1LL << 40);
    m.submit.deadline = rng.uniform_int(0, 1LL << 40);
    m.submit.priority = static_cast<int>(rng.uniform_int(-8, 8));
    const std::size_t hops = 2 + rng.index(5);
    for (std::size_t h = 0; h < hops; ++h) {
      m.submit.init.push_back("n" + std::to_string(rng.index(64)));
      m.submit.fin.push_back("m" + std::to_string(rng.index(64)));
    }
    for (Codec c : {Codec::kBinary, Codec::kJson}) {
      const Message back = decode_one(c, encode(c, m));
      ASSERT_EQ(back, m) << "trial " << trial << " over " << to_string(c);
      // Defaulted == compares Demand exactly, but be explicit about the
      // property that matters: the double's bit pattern survived.
      EXPECT_EQ(back.submit.demand.value(), m.submit.demand.value());
    }
  }
}

TEST(Codec, ByteAtATimeSplitterReplaysTheWholeConversation) {
  const std::vector<Message> msgs = sample_messages();
  for (Codec c : {Codec::kBinary, Codec::kJson}) {
    std::string stream;
    for (const Message& m : msgs) stream += encode(c, m);

    Decoder dec(c);
    std::vector<Message> got;
    for (char byte : stream) {
      dec.feed(std::string_view(&byte, 1));
      for (;;) {
        Message out;
        std::string err;
        const Decoder::Result r = dec.next(&out, &err);
        if (r == Decoder::Result::kNeedMore) break;
        ASSERT_EQ(r, Decoder::Result::kMessage) << err;
        got.push_back(out);
      }
    }
    EXPECT_FALSE(dec.has_partial());
    ASSERT_EQ(got.size(), msgs.size()) << to_string(c);
    for (std::size_t i = 0; i < msgs.size(); ++i) EXPECT_EQ(got[i], msgs[i]);
  }
}

TEST(Codec, RandomChunkSplitsDecodeIdentically) {
  const std::vector<Message> msgs = sample_messages();
  util::Rng rng(7);
  for (Codec c : {Codec::kBinary, Codec::kJson}) {
    std::string stream;
    for (const Message& m : msgs) stream += encode(c, m);
    for (int trial = 0; trial < 20; ++trial) {
      Decoder dec(c);
      std::vector<Message> got;
      std::size_t pos = 0;
      while (pos < stream.size()) {
        const std::size_t n =
            std::min(stream.size() - pos, 1 + rng.index(17));
        dec.feed(std::string_view(stream.data() + pos, n));
        pos += n;
        for (;;) {
          Message out;
          std::string err;
          const Decoder::Result r = dec.next(&out, &err);
          if (r == Decoder::Result::kNeedMore) break;
          ASSERT_EQ(r, Decoder::Result::kMessage) << err;
          got.push_back(out);
        }
      }
      ASSERT_EQ(got.size(), msgs.size());
      for (std::size_t i = 0; i < msgs.size(); ++i) EXPECT_EQ(got[i], msgs[i]);
    }
  }
}

TEST(Codec, PartialFrameReportsHasPartial) {
  const std::string frame =
      encode(Codec::kBinary, sample_messages()[2]);  // the submit
  Decoder dec(Codec::kBinary);
  dec.feed(std::string_view(frame.data(), frame.size() - 1));
  Message out;
  std::string err;
  EXPECT_EQ(dec.next(&out, &err), Decoder::Result::kNeedMore);
  EXPECT_TRUE(dec.has_partial());
  dec.feed(std::string_view(frame.data() + frame.size() - 1, 1));
  EXPECT_EQ(dec.next(&out, &err), Decoder::Result::kMessage);
  EXPECT_FALSE(dec.has_partial());
}

// ---------------------------------------------------------------------------
// Defensive decoding: the seeded fixtures. Every one must produce a
// sticky decoder error with a non-empty description.

void expect_poisoned(Decoder& dec, const std::string& context) {
  Message out;
  std::string err;
  EXPECT_EQ(dec.next(&out, &err), Decoder::Result::kError) << context;
  EXPECT_FALSE(err.empty()) << context;
  // Sticky: the same error again, and feeds are ignored from now on.
  std::string again;
  EXPECT_EQ(dec.next(&out, &again), Decoder::Result::kError) << context;
  EXPECT_EQ(again, err) << context;
  dec.feed("more bytes");
  EXPECT_EQ(dec.next(&out, &again), Decoder::Result::kError) << context;
}

TEST(Codec, FixtureOversizeFrameFailsOnThePrefixAlone) {
  const std::string bytes = strip_magic(fixture("bad_oversize.bin"));
  // The length prefix alone must trip the limit — the decoder never
  // waits for a 16 MiB body that will not come.
  Decoder dec(Codec::kBinary);
  dec.feed(std::string_view(bytes.data(), 4));
  Message out;
  std::string err;
  EXPECT_EQ(dec.next(&out, &err), Decoder::Result::kError);
  EXPECT_NE(err.find("exceeds limit"), std::string::npos) << err;
  expect_poisoned(dec, "oversize");
}

TEST(Codec, FixtureUnknownTagFails) {
  Decoder dec(Codec::kBinary);
  dec.feed(strip_magic(fixture("bad_tag.bin")));
  Message out;
  std::string err;
  EXPECT_EQ(dec.next(&out, &err), Decoder::Result::kError);
  EXPECT_NE(err.find("unknown frame tag"), std::string::npos) << err;
  expect_poisoned(dec, "unknown tag");
}

TEST(Codec, FixtureTruncatedBodyFails) {
  Decoder dec(Codec::kBinary);
  dec.feed(strip_magic(fixture("bad_truncated_body.bin")));
  Message out;
  std::string err;
  EXPECT_EQ(dec.next(&out, &err), Decoder::Result::kError);
  EXPECT_NE(err.find("truncated"), std::string::npos) << err;
  expect_poisoned(dec, "truncated body");
}

TEST(Codec, FixtureTruncatedJsonLineFailsAfterTheGoodLine) {
  Decoder dec(Codec::kJson);
  dec.feed(fixture("bad_truncated.jsonl"));
  Message out;
  std::string err;
  // First line is a valid hello; the truncated submit poisons the stream.
  ASSERT_EQ(dec.next(&out, &err), Decoder::Result::kMessage) << err;
  EXPECT_EQ(out.type, MsgType::kHello);
  EXPECT_EQ(dec.next(&out, &err), Decoder::Result::kError);
  EXPECT_FALSE(err.empty());
  expect_poisoned(dec, "truncated json");
}

TEST(Codec, FixtureUnknownJsonTypeFails) {
  Decoder dec(Codec::kJson);
  dec.feed(fixture("bad_unknown_type.jsonl"));
  Message out;
  std::string err;
  ASSERT_EQ(dec.next(&out, &err), Decoder::Result::kMessage) << err;
  EXPECT_EQ(dec.next(&out, &err), Decoder::Result::kError);
  EXPECT_NE(err.find("unknown message type"), std::string::npos) << err;
  expect_poisoned(dec, "unknown json type");
}

TEST(Codec, FixtureNonJsonLineFails) {
  Decoder dec(Codec::kJson);
  dec.feed(fixture("bad_not_json.jsonl"));
  Message out;
  std::string err;
  ASSERT_EQ(dec.next(&out, &err), Decoder::Result::kMessage) << err;
  EXPECT_EQ(dec.next(&out, &err), Decoder::Result::kError);
  expect_poisoned(dec, "not json");
}

TEST(Codec, TrailingBytesInFrameFail) {
  // A hand-built kDone frame claiming one extra body byte.
  std::string frame;
  frame.push_back(2);  // u32 LE length = 2 (tag + 1 stray byte)
  frame.push_back(0);
  frame.push_back(0);
  frame.push_back(0);
  frame.push_back(0x03);  // kDone
  frame.push_back('X');
  Decoder dec(Codec::kBinary);
  dec.feed(frame);
  Message out;
  std::string err;
  EXPECT_EQ(dec.next(&out, &err), Decoder::Result::kError);
  EXPECT_NE(err.find("trailing bytes"), std::string::npos) << err;
}

TEST(Codec, EmptyFrameFails) {
  const std::string frame(4, '\0');  // u32 LE length = 0
  Decoder dec(Codec::kBinary);
  dec.feed(frame);
  Message out;
  std::string err;
  EXPECT_EQ(dec.next(&out, &err), Decoder::Result::kError);
  EXPECT_NE(err.find("empty frame"), std::string::npos) << err;
}

TEST(Codec, WrongShapeJsonFieldFails) {
  Decoder dec(Codec::kJson);
  dec.feed("{\"type\":\"ack\",\"id\":\"nope\"}\n");
  Message out;
  std::string err;
  EXPECT_EQ(dec.next(&out, &err), Decoder::Result::kError);
  EXPECT_NE(err.find("id"), std::string::npos) << err;
}

TEST(Codec, HostileVectorCountFails) {
  // A submit frame whose init-vector count claims 2^31 elements inside a
  // tiny body: the decoder must reject the count, not allocate for it.
  std::string body;
  auto put_u64 = [&body](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      body.push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
    }
  };
  auto put_u32 = [&body](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      body.push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
    }
  };
  put_u64(1);            // id
  put_u32(0);            // name: empty
  put_u64(0x3ff0000000000000ULL);  // demand = 1.0
  put_u64(0);            // arrival
  put_u64(0);            // deadline
  put_u32(0);            // priority
  put_u32(0x80000000u);  // init count: hostile
  std::string frame;
  const std::uint32_t len = static_cast<std::uint32_t>(1 + body.size());
  for (int i = 0; i < 4; ++i) {
    frame.push_back(static_cast<char>((len >> (8 * i)) & 0xffu));
  }
  frame.push_back(0x02);  // kSubmit
  frame.append(body);
  Decoder dec(Codec::kBinary);
  dec.feed(frame);
  Message out;
  std::string err;
  EXPECT_EQ(dec.next(&out, &err), Decoder::Result::kError);
  EXPECT_NE(err.find("count exceeds frame"), std::string::npos) << err;
}

TEST(Codec, OverlongJsonLineWithoutNewlineFails) {
  Decoder dec(Codec::kJson, /*max_frame=*/64);
  dec.feed("{\"type\":\"error\",\"text\":\"" + std::string(128, 'x'));
  Message out;
  std::string err;
  EXPECT_EQ(dec.next(&out, &err), Decoder::Result::kError);
  EXPECT_NE(err.find("exceeds limit"), std::string::npos) << err;
}

// ---------------------------------------------------------------------------
// Numeric edges: boundary integers, non-finite doubles, and "negative"
// lengths — the values a fuzzer finds first and a hand test forgets.

TEST(Codec, U64BoundaryIdsRoundTripBothCodecs) {
  // Ids straddling the int64 boundary: the JSON parser must take its
  // exact-u64 path instead of rounding through double.
  const std::uint64_t ids[] = {
      0,
      static_cast<std::uint64_t>(std::numeric_limits<std::int64_t>::max()),
      static_cast<std::uint64_t>(std::numeric_limits<std::int64_t>::max()) + 1,
      std::numeric_limits<std::uint64_t>::max()};
  for (std::uint64_t id : ids) {
    Message m;
    m.type = MsgType::kAck;
    m.id = id;
    for (Codec c : {Codec::kBinary, Codec::kJson}) {
      EXPECT_EQ(decode_one(c, encode(c, m)).id, id)
          << id << " over " << to_string(c);
    }
  }
}

TEST(Codec, Int64BoundarySpansRoundTripBothCodecs) {
  Message m;
  m.type = MsgType::kRecord;
  m.record.id = 1;
  m.record.status = "completed";
  m.record.degradation = "full";
  m.record.plan_span = std::numeric_limits<std::int64_t>::min();
  m.record.exec_duration = std::numeric_limits<std::int64_t>::max();
  for (Codec c : {Codec::kBinary, Codec::kJson}) {
    const Message back = decode_one(c, encode(c, m));
    EXPECT_EQ(back.record.plan_span, m.record.plan_span) << to_string(c);
    EXPECT_EQ(back.record.exec_duration, m.record.exec_duration)
        << to_string(c);
  }
}

TEST(Codec, NonFiniteDemandsRoundTripBitExactlyInBinary) {
  // The binary codec ships the raw IEEE-754 bit pattern, so NaN and the
  // infinities survive even though NaN != NaN under operator==.
  const double values[] = {std::numeric_limits<double>::quiet_NaN(),
                           std::numeric_limits<double>::infinity(),
                           -std::numeric_limits<double>::infinity()};
  for (double v : values) {
    Message m;
    m.type = MsgType::kSubmit;
    m.submit.id = 1;
    m.submit.demand = net::Demand{v};
    const Message back = decode_one(Codec::kBinary, encode(Codec::kBinary, m));
    std::uint64_t want = 0;
    std::uint64_t got = 0;
    const double d = back.submit.demand.value();
    std::memcpy(&want, &v, sizeof want);
    std::memcpy(&got, &d, sizeof got);
    EXPECT_EQ(got, want);
  }
}

TEST(Codec, NonFiniteDemandsAreRejectedByTheJsonParser) {
  // %.17g renders NaN/Inf as "nan"/"inf", which is not JSON; the decoder
  // must refuse the line rather than invent a number.
  const double values[] = {std::numeric_limits<double>::quiet_NaN(),
                           std::numeric_limits<double>::infinity()};
  for (double v : values) {
    Message m;
    m.type = MsgType::kSubmit;
    m.submit.id = 1;
    m.submit.demand = net::Demand{v};
    Decoder dec(Codec::kJson);
    dec.feed(encode(Codec::kJson, m));
    Message out;
    std::string err;
    EXPECT_EQ(dec.next(&out, &err), Decoder::Result::kError);
    // "nan" trips the null-literal path, "inf" the top-level dispatch;
    // both must surface as structured JSON parse errors.
    EXPECT_NE(err.find("JSON"), std::string::npos) << err;
  }
}

TEST(Codec, NegativeLengthPrefixIsRejectedNotAllocated) {
  // 0xFFFFFFFF is -1 if the prefix were misread as signed; either way it
  // must trip the frame limit immediately, before any buffering.
  Decoder dec(Codec::kBinary);
  dec.feed(std::string(4, '\xff'));
  Message out;
  std::string err;
  EXPECT_EQ(dec.next(&out, &err), Decoder::Result::kError);
  EXPECT_NE(err.find("exceeds limit"), std::string::npos) << err;
}

TEST(Codec, NegativeJsonValueForUnsignedFieldFails) {
  Decoder dec(Codec::kJson);
  dec.feed("{\"type\":\"ack\",\"id\":-1}\n");
  Message out;
  std::string err;
  EXPECT_EQ(dec.next(&out, &err), Decoder::Result::kError);
  EXPECT_NE(err.find("negative field"), std::string::npos) << err;
}

// ---------------------------------------------------------------------------
// Wire-form conversions against a named graph.

net::Graph named_diamond() {
  net::Graph g;
  const net::NodeId s = g.add_node("s");
  const net::NodeId m = g.add_node("m");
  const net::NodeId t = g.add_node("t");
  const net::NodeId b = g.add_node("b");
  g.add_link(s, m, net::Capacity{4.0}, 1);
  g.add_link(m, t, net::Capacity{4.0}, 1);
  g.add_link(s, b, net::Capacity{4.0}, 1);
  g.add_link(b, t, net::Capacity{4.0}, 1);
  return g;
}

TEST(Wire, RequestRoundTripsThroughNames) {
  const net::Graph g = named_diamond();
  const auto index = node_index(g);
  service::UpdateRequest r;
  r.id = 9;
  r.name = "flow9";
  r.p_init = net::Path{0, 1, 2};
  r.p_fin = net::Path{0, 3, 2};
  r.demand = net::Demand{1.5};
  r.arrival = 1000;
  r.deadline = 9000;
  r.priority = 2;

  const WireRequest w = to_wire(g, r);
  EXPECT_EQ(w.init, (std::vector<std::string>{"s", "m", "t"}));
  EXPECT_EQ(w.fin, (std::vector<std::string>{"s", "b", "t"}));

  const service::UpdateRequest back = from_wire(index, w);
  EXPECT_EQ(back.id, r.id);
  EXPECT_EQ(back.name, r.name);
  EXPECT_EQ(back.p_init.nodes(), r.p_init.nodes());
  EXPECT_EQ(back.p_fin.nodes(), r.p_fin.nodes());
  EXPECT_EQ(back.demand.value(), r.demand.value());
  EXPECT_EQ(back.arrival, r.arrival);
  EXPECT_EQ(back.deadline, r.deadline);
  EXPECT_EQ(back.priority, r.priority);
}

TEST(Wire, FromWireRejectsMalformedRequests) {
  const net::Graph g = named_diamond();
  const auto index = node_index(g);
  WireRequest good;
  good.id = 1;
  good.init = {"s", "m", "t"};
  good.fin = {"s", "b", "t"};
  good.demand = net::Demand{1.0};

  WireRequest ghost = good;
  ghost.fin = {"s", "ghost", "t"};
  EXPECT_THROW(from_wire(index, ghost), std::runtime_error);

  WireRequest short_path = good;
  short_path.init = {"s"};
  EXPECT_THROW(from_wire(index, short_path), std::runtime_error);

  WireRequest bad_demand = good;
  bad_demand.demand = net::Demand{0.0};
  EXPECT_THROW(from_wire(index, bad_demand), std::runtime_error);

  EXPECT_NO_THROW(from_wire(index, good));
}

}  // namespace
}  // namespace chronus::rpc
