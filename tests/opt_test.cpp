// Tests for the exact solvers: the MUTP branch-and-bound (OPT) and the
// order-replacement round minimization (OR planner), including agreement
// with the greedy scheduler and the exact verifier.
#include <gtest/gtest.h>

#include "core/greedy_scheduler.hpp"
#include "net/generators.hpp"
#include "opt/mutp_bnb.hpp"
#include "opt/order_bnb.hpp"
#include "timenet/verifier.hpp"

namespace chronus::opt {
namespace {

using net::NodeId;
using net::Path;

constexpr NodeId v1 = 0, v2 = 1, v3 = 2, v4 = 3, v5 = 4;

net::UpdateInstance overtaking_instance() {
  net::Graph g;
  g.add_nodes(4);
  g.add_link(0, 1, net::Capacity{1.0}, 2);
  g.add_link(1, 2, net::Capacity{1.0}, 2);
  g.add_link(2, 3, net::Capacity{1.0}, 2);
  g.add_link(0, 2, net::Capacity{1.0}, 1);
  return net::UpdateInstance::from_paths(g, Path{0, 1, 2, 3}, Path{0, 2, 3},
                                         net::Demand{1.0});
}

TEST(Mutp, Fig1OptimalIsFourSteps) {
  const auto inst = net::fig1_instance();
  const MutpResult res = solve_mutp(inst);
  ASSERT_TRUE(res.feasible()) << res.message;
  EXPECT_TRUE(res.proved_optimal);
  EXPECT_EQ(res.makespan, 4);
  EXPECT_TRUE(timenet::verify_transition(inst, res.schedule).ok());
}

TEST(Mutp, NeverWorseThanGreedy) {
  util::Rng rng(301);
  net::RandomInstanceOptions opt;
  opt.n = 8;
  for (int i = 0; i < 20; ++i) {
    const auto inst = net::random_instance(opt, rng);
    const auto greedy = core::greedy_schedule(inst);
    const MutpResult res = solve_mutp(inst);
    if (greedy.feasible()) {
      ASSERT_TRUE(res.feasible());
      EXPECT_LE(res.makespan, greedy.schedule.step_span());
    }
  }
}

TEST(Mutp, SchedulesVerifyClean) {
  util::Rng rng(302);
  net::RandomInstanceOptions opt;
  opt.n = 7;
  for (int i = 0; i < 20; ++i) {
    const auto inst = net::random_instance(opt, rng);
    const MutpResult res = solve_mutp(inst);
    if (res.feasible()) {
      EXPECT_TRUE(timenet::verify_transition(inst, res.schedule).ok());
    }
  }
}

TEST(Mutp, DetectsInfeasibility) {
  const MutpResult res = solve_mutp(overtaking_instance());
  EXPECT_FALSE(res.feasible());
  EXPECT_FALSE(res.timed_out);
}

TEST(Mutp, ForceCompleteOnInfeasible) {
  MutpOptions opts;
  opts.force_complete = true;
  const auto inst = overtaking_instance();
  const MutpResult res = solve_mutp(inst, opts);
  EXPECT_EQ(res.status, core::ScheduleStatus::kBestEffort);
  for (const NodeId v : inst.switches_to_update()) {
    EXPECT_TRUE(res.schedule.contains(v));
  }
}

TEST(Mutp, NothingToUpdate) {
  net::Graph g = net::line_topology(3, net::Capacity{1.0}, 1);
  const auto inst =
      net::UpdateInstance::from_paths(g, Path{0, 1, 2}, Path{0, 1, 2}, net::Demand{1.0});
  const MutpResult res = solve_mutp(inst);
  EXPECT_TRUE(res.feasible());
  EXPECT_EQ(res.makespan, 0);
  EXPECT_TRUE(res.proved_optimal);
}

TEST(Mutp, SlackCapacityNeverSlowsTheOptimum) {
  // On Fig. 1 the binding constraints are the forwarding loops, not the
  // capacities, so the optimum stays at 4 steps even with slack links —
  // but it can never get worse.
  auto inst = net::fig1_instance();
  for (net::LinkId id = 0; id < inst.graph().link_count(); ++id) {
    inst.mutable_graph().mutable_link(id).capacity = net::Capacity{2.0};
  }
  const MutpResult res = solve_mutp(inst);
  ASSERT_TRUE(res.feasible());
  EXPECT_TRUE(res.proved_optimal);
  EXPECT_EQ(res.makespan, 4);
  EXPECT_TRUE(timenet::verify_transition(inst, res.schedule).ok());
}

TEST(Mutp, TimeoutReturnsIncumbent) {
  util::Rng rng(303);
  net::RandomInstanceOptions opt;
  opt.n = 12;
  const auto inst = net::random_instance(opt, rng);
  MutpOptions mo;
  mo.timeout_sec = 1e-6;  // expire immediately
  const MutpResult res = solve_mutp(inst, mo);
  // The greedy incumbent (if feasible) must survive the timeout.
  const auto greedy = core::greedy_schedule(inst);
  if (greedy.feasible()) {
    EXPECT_TRUE(res.feasible());
    EXPECT_FALSE(res.proved_optimal);
  }
}

TEST(OrderSafety, SingleSwitchCases) {
  const auto inst = net::fig1_instance();
  EXPECT_TRUE(round_is_loop_safe(inst, {}, {v1}));
  EXPECT_TRUE(round_is_loop_safe(inst, {}, {v2}));
  EXPECT_FALSE(round_is_loop_safe(inst, {}, {v3}));  // v2<->v3 cycle
  EXPECT_FALSE(round_is_loop_safe(inst, {}, {v4}));  // v3<->v4 cycle
  EXPECT_FALSE(round_is_loop_safe(inst, {}, {v5}));  // v5->v2->..->v5
}

TEST(OrderSafety, RoundCompositionMatters) {
  const auto inst = net::fig1_instance();
  EXPECT_TRUE(round_is_loop_safe(inst, {}, {v1, v2}));
  // After {v1, v2}, v3 and v5 become safe, v4 still cycles with v3.
  EXPECT_TRUE(round_is_loop_safe(inst, {v1, v2}, {v3, v5}));
  EXPECT_FALSE(round_is_loop_safe(inst, {v1, v2}, {v3, v4}));
  EXPECT_TRUE(round_is_loop_safe(inst, {v1, v2, v3, v5}, {v4}));
}

TEST(OrderBnb, Fig1NeedsThreeRounds) {
  const auto inst = net::fig1_instance();
  const OrderResult res = solve_order_replacement(inst);
  ASSERT_TRUE(res.feasible) << res.message;
  EXPECT_TRUE(res.proved_optimal);
  EXPECT_EQ(res.round_count(), 3u);
  // Round sequence must be executable: each round safe given its prefix.
  std::set<NodeId> updated;
  for (const auto& round : res.rounds) {
    EXPECT_TRUE(round_is_loop_safe(
        inst, updated, std::set<NodeId>(round.begin(), round.end())));
    updated.insert(round.begin(), round.end());
  }
  EXPECT_EQ(updated.size(), 5u);
}

TEST(OrderBnb, GreedyFallbackAboveExactLimit) {
  const auto inst = net::fig1_instance();
  OrderOptions opts;
  opts.exact_limit = 2;  // force the fallback
  const OrderResult res = solve_order_replacement(inst, opts);
  EXPECT_TRUE(res.feasible);
  EXPECT_FALSE(res.proved_optimal);
  EXPECT_GE(res.round_count(), 3u);
}

TEST(OrderBnb, RandomInstancesAlwaysFeasible) {
  // Reverse final-path order one switch per round is always strongly
  // loop-free, so the planner must always find a sequence.
  util::Rng rng(304);
  net::RandomInstanceOptions opt;
  opt.n = 10;
  for (int i = 0; i < 20; ++i) {
    const auto inst = net::random_instance(opt, rng);
    const OrderResult res = solve_order_replacement(inst);
    EXPECT_TRUE(res.feasible) << res.message;
    std::set<NodeId> updated;
    std::size_t total = 0;
    for (const auto& round : res.rounds) {
      EXPECT_TRUE(round_is_loop_safe(
          inst, updated, std::set<NodeId>(round.begin(), round.end())));
      updated.insert(round.begin(), round.end());
      total += round.size();
    }
    EXPECT_EQ(total, inst.switches_to_update().size());
  }
}

TEST(OrderBnb, NothingToUpdate) {
  net::Graph g = net::line_topology(3, net::Capacity{1.0}, 1);
  const auto inst =
      net::UpdateInstance::from_paths(g, Path{0, 1, 2}, Path{0, 1, 2}, net::Demand{1.0});
  const OrderResult res = solve_order_replacement(inst);
  EXPECT_TRUE(res.feasible);
  EXPECT_EQ(res.round_count(), 0u);
}

TEST(OrderBnb, MatchesBruteForceOnSmallInstances) {
  // Exhaustive check of minimality on random 6-switch instances: no
  // partition into fewer rounds can be safe.
  util::Rng rng(305);
  net::RandomInstanceOptions opt;
  opt.n = 6;
  for (int i = 0; i < 10; ++i) {
    const auto inst = net::random_instance(opt, rng);
    const OrderResult res = solve_order_replacement(inst);
    ASSERT_TRUE(res.feasible);
    if (res.round_count() <= 1) continue;
    // Brute force: try all ways to update everything in one round fewer by
    // checking whether a single round covering everything is safe (the
    // only way to beat 2 rounds) — for deeper counts rely on the B&B's
    // own exhaustiveness, checked via proved_optimal.
    EXPECT_TRUE(res.proved_optimal);
    const auto all = inst.switches_to_update();
    if (res.round_count() == 2) {
      EXPECT_FALSE(round_is_loop_safe(
          inst, {}, std::set<NodeId>(all.begin(), all.end())));
    }
  }
}

}  // namespace
}  // namespace chronus::opt
