// The arena allocator's own contract (DESIGN.md §16): granule rounding
// and alignment, chunk-growth geometry, reset-and-replay address
// stability, deterministic stats accounting, the runtime backing switch,
// and — under AddressSanitizer — the use-after-reset trap.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "util/arena.hpp"
#include "util/contracts.hpp"

namespace chronus {
namespace {

using util::Arena;
using util::ArenaAllocator;
using util::ArenaBacking;
using util::ArenaScope;
using util::ScopedArenaBacking;

std::uintptr_t addr(const void* p) {
  return reinterpret_cast<std::uintptr_t>(p);
}

TEST(ArenaBackingSwitch, ScopedOverrideWinsAndNests) {
  const bool initial = util::arena_enabled();
  {
    ScopedArenaBacking heap(ArenaBacking::kHeap);
    EXPECT_FALSE(util::arena_enabled());
    EXPECT_EQ(util::arena_backing(), ArenaBacking::kHeap);
    {
      ScopedArenaBacking arena(ArenaBacking::kArena);
      EXPECT_TRUE(util::arena_enabled());
    }
    // The inner override pops back to the outer one, not to the env.
    EXPECT_FALSE(util::arena_enabled());
  }
  EXPECT_EQ(util::arena_enabled(), initial);
}

TEST(Arena, AllocationsAreGranuleRoundedAndAligned) {
  Arena a;
  ArenaScope claim(a);
  for (const std::size_t align : {std::size_t{1}, std::size_t{8},
                                  std::size_t{16}, std::size_t{32},
                                  std::size_t{64}}) {
    void* p = a.allocate(24, align);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(addr(p) % align, 0u) << "align " << align;
    // Sub-granule alignment still lands on the 8-byte granule grid.
    EXPECT_EQ(addr(p) % Arena::kMinAlign, 0u);
  }
  // Every request is rounded up to whole granules in the accounting.
  Arena b;
  ArenaScope claim_b(b);
  (void)b.allocate(1, 1);
  EXPECT_EQ(b.stats().bytes_requested, Arena::kMinAlign);
  (void)b.allocate(9, 1);
  EXPECT_EQ(b.stats().bytes_requested, 3 * Arena::kMinAlign);
  // Zero-byte allocations occupy one granule each: distinct addresses.
  void* z1 = b.allocate(0, 1);
  void* z2 = b.allocate(0, 1);
  EXPECT_EQ(addr(z2), addr(z1) + Arena::kMinAlign);
}

TEST(Arena, RejectsUnsupportedAlignment) {
  if (util::contract_level() < 1) GTEST_SKIP() << "contracts disabled";
  Arena a;
  ArenaScope claim(a);
  EXPECT_THROW((void)a.allocate(8, 3), util::ContractViolation);
  EXPECT_THROW((void)a.allocate(8, 128), util::ContractViolation);
}

TEST(Arena, OverAlignedArraysLandOnTheirBoundary) {
  struct alignas(64) CacheLine {
    unsigned char bytes[64];
  };
  Arena a;
  {
    ArenaScope claim(a);
    (void)a.allocate(8, 8);  // misalign the cursor first
    CacheLine* rows = a.allocate_array<CacheLine>(3);
    EXPECT_EQ(addr(rows) % 64, 0u);
  }
  // The allocator adapter serves over-aligned element types too.
  std::vector<CacheLine, ArenaAllocator<CacheLine>> v{
      ArenaAllocator<CacheLine>(&a)};
  v.resize(5);
  EXPECT_EQ(addr(v.data()) % 64, 0u);
}

TEST(Arena, ChunkGrowthIsGeometricWithOversizeEscape) {
  Arena a(64);  // tiny first slab so growth is observable
  ArenaScope claim(a);
  EXPECT_EQ(a.stats().chunks, 0u);  // slabs open lazily
  (void)a.allocate(64, 8);
  EXPECT_EQ(a.stats().chunks, 1u);  // first slab: 64 bytes, now full
  (void)a.allocate(8, 8);
  EXPECT_EQ(a.stats().chunks, 2u);  // second slab doubles to 128
  (void)a.allocate(120, 8);         // 8 + 120 = 128: fits exactly
  EXPECT_EQ(a.stats().chunks, 2u);
  (void)a.allocate(8, 8);
  EXPECT_EQ(a.stats().chunks, 3u);  // third slab: 256
  // A request bigger than the next geometric size gets an exact slab.
  (void)a.allocate(10000, 8);
  EXPECT_EQ(a.stats().chunks, 4u);
  EXPECT_EQ(a.stats().allocs, 5u);
}

TEST(Arena, ResetReplayReturnsIdenticalAddresses) {
  Arena a(128);  // force the sequence across several slabs
  ArenaScope claim(a);
  const std::size_t sizes[] = {24, 64, 8, 200, 16, 1000, 48};
  const std::size_t aligns[] = {8, 64, 8, 16, 32, 8, 64};
  std::vector<std::uintptr_t> first;
  for (std::size_t i = 0; i < std::size(sizes); ++i) {
    first.push_back(addr(a.allocate(sizes[i], aligns[i])));
  }
  const std::uint64_t chunks_before = a.stats().chunks;

  a.reset();
  EXPECT_EQ(a.live_bytes(), 0u);
  EXPECT_EQ(a.stats().resets, 1u);
  for (std::size_t i = 0; i < std::size(sizes); ++i) {
    EXPECT_EQ(addr(a.allocate(sizes[i], aligns[i])), first[i])
        << "replayed allocation " << i << " moved";
  }
  // The replay walks the already-opened slabs; none are added.
  EXPECT_EQ(a.stats().chunks, chunks_before);
}

TEST(Arena, HighWaterTracksThePeakAcrossResets) {
  Arena a;
  ArenaScope claim(a);
  for (int i = 0; i < 10; ++i) (void)a.allocate(104, 8);
  EXPECT_EQ(a.live_bytes(), 1040u);
  EXPECT_EQ(a.stats().high_water, 1040u);

  a.reset();
  (void)a.allocate(8, 8);
  EXPECT_EQ(a.live_bytes(), 8u);
  EXPECT_EQ(a.stats().high_water, 1040u);  // the peak survives the reset
  EXPECT_EQ(a.stats().bytes_requested, 1048u);
  EXPECT_EQ(a.stats().allocs, 11u);
}

TEST(Arena, DeallocateDoesNotDisturbTheCursor) {
  Arena a;
  ArenaScope claim(a);
  void* p1 = a.allocate(32, 8);
  a.deallocate(p1, 32);  // bump arenas only reclaim at reset()
  void* p2 = a.allocate(32, 8);
  EXPECT_EQ(addr(p2), addr(p1) + 32);
  EXPECT_EQ(a.live_bytes(), 64u);
}

TEST(Arena, ScopeDoubleClaimIsAContractViolation) {
  if (util::contract_level() < 1) GTEST_SKIP() << "contracts disabled";
  Arena a;
  ArenaScope outer(a);
  EXPECT_THROW(ArenaScope inner(a), util::ContractViolation);
  // The failed claim must not have released the outer one.
  EXPECT_THROW(ArenaScope again(a), util::ContractViolation);
}

TEST(ArenaAllocatorAdapter, ContainersRoundTripValues) {
  Arena a;
  util::ArenaVector<int> v{ArenaAllocator<int>(&a)};
  for (int i = 0; i < 1000; ++i) v.push_back(i * 3);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(v[static_cast<std::size_t>(i)], i * 3);

  util::ArenaString s{ArenaAllocator<char>(&a)};
  for (int i = 0; i < 100; ++i) s.append("chronus");
  EXPECT_EQ(s.size(), 700u);

  // Node-based containers exercise allocator rebinding.
  std::map<int, int, std::less<int>,
           ArenaAllocator<std::pair<const int, int>>>
      m{ArenaAllocator<std::pair<const int, int>>(&a)};
  for (int i = 0; i < 100; ++i) m[i] = -i;
  EXPECT_EQ(m.at(42), -42);
  EXPECT_GT(a.stats().bytes_requested, 0u);
}

TEST(ArenaAllocatorAdapter, EqualityFollowsTheArena) {
  Arena a;
  Arena b;
  EXPECT_EQ(ArenaAllocator<int>(&a), ArenaAllocator<int>(&a));
  EXPECT_NE(ArenaAllocator<int>(&a), ArenaAllocator<int>(&b));
  EXPECT_NE(ArenaAllocator<int>(&a), ArenaAllocator<int>());
  // Converting copies point at the same arena.
  const ArenaAllocator<long> rebound{ArenaAllocator<int>(&a)};
  EXPECT_EQ(rebound.arena(), &a);
}

TEST(ArenaAllocatorAdapter, NullArenaFallsBackToTheHeap) {
  // Default-constructed adapters (moved-from containers, container
  // internals) must stay fully functional without an arena.
  util::ArenaVector<int> v;
  for (int i = 0; i < 100; ++i) v.push_back(i);
  EXPECT_EQ(v.size(), 100u);
  util::ArenaString s;
  s = "heap-backed";
  EXPECT_EQ(s, "heap-backed");
}

TEST(ArenaAsan, UseAfterResetTraps) {
#if CHRONUS_ARENA_ASAN
  EXPECT_DEATH(
      {
        Arena a;
        ArenaScope claim(a);
        auto* p = static_cast<volatile unsigned char*>(a.allocate(64, 8));
        p[0] = 42;
        a.reset();          // re-poisons every slab
        (void)p[0];         // stale read into the previous request
      },
      "use-after-poison");
#else
  GTEST_SKIP() << "requires an AddressSanitizer build (sanitize preset)";
#endif
}

}  // namespace
}  // namespace chronus
