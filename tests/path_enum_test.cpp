// Tests for the P(f) path enumeration of program (3), and the
// cross-validation the paper's formulation implies: every trajectory a
// schedule induces for an injection class is a member of the loop-free
// timed path set, and the optimal schedule's class paths always are.
#include <gtest/gtest.h>

#include "core/greedy_scheduler.hpp"
#include "net/generators.hpp"
#include "opt/mutp_bnb.hpp"
#include "timenet/path_enum.hpp"
#include "timenet/trajectory.hpp"

namespace chronus::timenet {
namespace {

TimedPath as_timed_path(const Trace& trace) {
  TimedPath p;
  for (const TraceHop& hop : trace.hops) {
    p.push_back(TimedNode{hop.node, hop.arrival});
  }
  return p;
}

TEST(PathEnum, Fig1ClassHasBothRoutes) {
  const auto inst = net::fig1_instance();
  EnumerateOptions opts;
  opts.t_end = timenet::TimePoint{20};
  const auto paths =
      enumerate_timed_paths(inst.graph(), inst.source(), timenet::TimePoint{0},
                            inst.destination(), opts);
  // The old route v1..v6 (5 hops, arrives at 5) and the new route
  // v1,v4,v3,v2,v6 (4 hops, arrives at 4) must both be present.
  TimedPath old_route{{0, TimePoint{0}}, {1, TimePoint{1}}, {2, TimePoint{2}},
                      {3, TimePoint{3}}, {4, TimePoint{4}}, {5, TimePoint{5}}};
  TimedPath new_route{{0, TimePoint{0}}, {3, TimePoint{1}}, {2, TimePoint{2}},
                      {1, TimePoint{3}}, {5, TimePoint{4}}};
  EXPECT_TRUE(contains_path(paths, old_route));
  EXPECT_TRUE(contains_path(paths, new_route));
  // Every enumerated path is loop-free and ends at the destination.
  for (const TimedPath& p : paths) {
    std::set<net::NodeId> seen;
    for (const TimedNode& tn : p) EXPECT_TRUE(seen.insert(tn.node).second);
    EXPECT_EQ(p.back().node, inst.destination());
    EXPECT_LE(p.back().time, TimePoint{20});
  }
}

TEST(PathEnum, HorizonBoundsArrivals) {
  const auto inst = net::fig1_instance();
  EnumerateOptions opts;
  opts.t_end = timenet::TimePoint{4};  // only the 4-hop new route fits
  const auto paths = enumerate_timed_paths(inst.graph(), inst.source(), timenet::TimePoint{0},
                                           inst.destination(), opts);
  for (const TimedPath& p : paths) EXPECT_LE(p.back().time, TimePoint{4});
  EXPECT_FALSE(paths.empty());
}

TEST(PathEnum, MaxPathsCapsTheSet) {
  const auto inst = net::fig1_instance();
  EnumerateOptions opts;
  opts.t_end = timenet::TimePoint{30};
  opts.max_paths = 2;
  const auto paths = enumerate_timed_paths(inst.graph(), inst.source(), timenet::TimePoint{0},
                                           inst.destination(), opts);
  EXPECT_EQ(paths.size(), 2u);
}

TEST(PathEnum, ScheduleTrajectoriesAreMembersOfPf) {
  // Program (3) picks one loop-free timed path per class; conversely, the
  // trajectory a (clean) schedule induces for any class must lie in P(f).
  const auto inst = net::fig1_instance();
  const auto plan = core::greedy_schedule(inst);
  ASSERT_TRUE(plan.feasible());
  for (TimePoint tau{-3}; tau <= TimePoint{4}; ++tau) {
    const Trace trace = trace_class(inst, plan.schedule, tau);
    ASSERT_TRUE(trace.delivered());
    ASSERT_FALSE(trace.looped());
    EnumerateOptions opts;
    opts.t_end = trace.hops.back().arrival;
    const auto paths = enumerate_timed_paths(
        inst.graph(), inst.source(), tau, inst.destination(), opts);
    EXPECT_TRUE(contains_path(paths, as_timed_path(trace)))
        << "class " << tau << ": " << to_string(inst.graph(), trace);
  }
}

TEST(PathEnum, OptTrajectoriesAreMembersOfPf) {
  util::Rng rng(44);
  net::RandomInstanceOptions opt;
  opt.n = 6;
  for (int i = 0; i < 5; ++i) {
    const auto inst = net::random_instance(opt, rng);
    const auto exact = opt::solve_mutp(inst);
    if (!exact.feasible()) continue;
    for (TimePoint tau{}; tau <= exact.schedule.last_time(); ++tau) {
      const Trace trace = trace_class(inst, exact.schedule, tau);
      if (!trace.delivered()) continue;
      EnumerateOptions opts;
      opts.t_end = trace.hops.back().arrival;
      const auto paths = enumerate_timed_paths(
          inst.graph(), inst.source(), tau, inst.destination(), opts);
      EXPECT_TRUE(contains_path(paths, as_timed_path(trace)));
    }
  }
}

}  // namespace
}  // namespace chronus::timenet
