// Tests for the SDN simulator substrate: event queue, flow tables,
// switches with time-resolved tables, network construction, the fluid
// traffic tracer and the controller (latencies, timed mods, barriers).
#include <gtest/gtest.h>

#include "net/generators.hpp"
#include "sim/controller.hpp"
#include "sim/event_queue.hpp"
#include "sim/flow_table.hpp"
#include "sim/network.hpp"
#include "sim/switch.hpp"
#include "sim/traffic.hpp"

namespace chronus::sim {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue eq;
  std::vector<int> order;
  eq.schedule_at(20, [&] { order.push_back(2); });
  eq.schedule_at(10, [&] { order.push_back(1); });
  eq.schedule_at(30, [&] { order.push_back(3); });
  EXPECT_EQ(eq.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(eq.now(), 30);
}

TEST(EventQueue, StableForEqualTimes) {
  EventQueue eq;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) eq.schedule_at(7, [&, i] { order.push_back(i); });
  eq.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, RunUntilStopsAndAdvancesClock) {
  EventQueue eq;
  int fired = 0;
  eq.schedule_at(10, [&] { ++fired; });
  eq.schedule_at(20, [&] { ++fired; });
  EXPECT_EQ(eq.run(15), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(eq.now(), 15);
  eq.run();
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, EventsCanScheduleEvents) {
  EventQueue eq;
  int count = 0;
  eq.schedule_at(1, [&] {
    ++count;
    eq.schedule_in(5, [&] { ++count; });
  });
  eq.run();
  EXPECT_EQ(count, 2);
  EXPECT_EQ(eq.now(), 6);
}

TEST(EventQueue, RejectsPastScheduling) {
  EventQueue eq;
  eq.schedule_at(10, [] {});
  eq.run();
  EXPECT_THROW(eq.schedule_at(5, [] {}), std::invalid_argument);
}

TEST(FlowTableT, PriorityWins) {
  FlowTable t;
  FlowEntry low;
  low.priority = 1;
  low.match.dst_prefix = "10.";
  low.action = Action::output(1);
  FlowEntry high;
  high.priority = 9;
  high.match.dst_prefix = "10.0.";
  high.action = Action::output(2);
  t.add(low);
  t.add(high);
  PacketHeader pkt;
  pkt.dst = "10.0.0.5";
  ASSERT_NE(t.lookup(pkt), nullptr);
  EXPECT_EQ(t.lookup(pkt)->action.out_port, 2u);
  pkt.dst = "10.1.0.5";
  EXPECT_EQ(t.lookup(pkt)->action.out_port, 1u);
}

TEST(FlowTableT, WildcardsMatchEverything) {
  FlowTable t;
  FlowEntry e;
  e.action = Action::output(3);
  t.add(e);
  PacketHeader pkt;
  pkt.dst = "anything";
  pkt.vlan = 7;
  pkt.in_port = 4;
  ASSERT_NE(t.lookup(pkt), nullptr);
}

TEST(FlowTableT, VlanAndInPortMatching) {
  FlowTable t;
  FlowEntry e;
  e.match.vlan = 2;
  e.match.in_port = 1;
  e.action = Action::output(5);
  t.add(e);
  PacketHeader pkt;
  pkt.vlan = 2;
  pkt.in_port = 1;
  EXPECT_NE(t.lookup(pkt), nullptr);
  pkt.vlan = 1;
  EXPECT_EQ(t.lookup(pkt), nullptr);
  pkt.vlan = 2;
  pkt.in_port = 2;
  EXPECT_EQ(t.lookup(pkt), nullptr);
}

TEST(FlowTableT, AddReplacesSameMatchAndPriority) {
  FlowTable t;
  FlowEntry e;
  e.match.dst_prefix = "10.";
  e.action = Action::output(1);
  t.add(e);
  e.action = Action::output(2);
  EXPECT_TRUE(t.add(e));
  EXPECT_EQ(t.size(), 1u);
  PacketHeader pkt;
  pkt.dst = "10.1";
  EXPECT_EQ(t.lookup(pkt)->action.out_port, 2u);
}

TEST(FlowTableT, ModifyAndRemoveStrict) {
  FlowTable t;
  FlowEntry e;
  e.priority = 5;
  e.match.dst_prefix = "10.";
  e.action = Action::output(1);
  t.add(e);
  EXPECT_EQ(t.modify(e.match, 5, Action::output(9)), 1u);
  EXPECT_EQ(t.modify(e.match, 6, Action::output(9)), 0u);  // wrong priority
  PacketHeader pkt;
  pkt.dst = "10.2";
  EXPECT_EQ(t.lookup(pkt)->action.out_port, 9u);
  EXPECT_EQ(t.remove(e.match, 5), 1u);
  EXPECT_EQ(t.size(), 0u);
}

TEST(FlowTableT, EntryToString) {
  FlowEntry e;
  e.priority = 10;
  e.match.dst_prefix = "10.0.2.";
  e.action = Action::output(kHostPort);
  const std::string s = e.to_string();
  EXPECT_NE(s.find("dst=10.0.2."), std::string::npos);
  EXPECT_NE(s.find("output:host"), std::string::npos);
}

TEST(SimSwitchT, TableAtReconstructsHistory) {
  SimSwitch sw(0, "s1");
  FlowMod add;
  add.type = FlowModType::kAdd;
  add.entry.match.dst_prefix = "10.";
  add.entry.action = Action::output(1);
  sw.apply(100, add);
  FlowMod mod = add;
  mod.type = FlowModType::kModifyStrict;
  mod.entry.action = Action::output(2);
  sw.apply(200, mod);

  PacketHeader pkt;
  pkt.dst = "10.5";
  EXPECT_EQ(sw.table_at(50).lookup(pkt), nullptr);
  EXPECT_EQ(sw.table_at(100).lookup(pkt)->action.out_port, 1u);
  EXPECT_EQ(sw.table_at(199).lookup(pkt)->action.out_port, 1u);
  EXPECT_EQ(sw.table_at(200).lookup(pkt)->action.out_port, 2u);
  EXPECT_EQ(sw.mods_applied(), 2u);
}

TEST(SimSwitchT, RejectsOutOfOrderMods) {
  SimSwitch sw(0, "s1");
  FlowMod m;
  m.entry.action = Action::output(1);
  sw.apply(10, m);
  EXPECT_THROW(sw.apply(5, m), std::logic_error);
}

TEST(SimSwitchT, PeakTableSize) {
  SimSwitch sw(0, "s1");
  FlowMod a;
  a.entry.priority = 1;
  a.entry.action = Action::output(1);
  FlowMod b;
  b.entry.priority = 2;
  b.entry.action = Action::output(1);
  sw.apply(1, a);
  sw.apply(2, b);
  FlowMod del = b;
  del.type = FlowModType::kDeleteStrict;
  sw.apply(3, del);
  EXPECT_EQ(sw.table().size(), 1u);
  EXPECT_EQ(sw.peak_table_size(), 2u);
  const auto hist = sw.size_history();
  ASSERT_EQ(hist.size(), 3u);
  EXPECT_EQ(hist[1].second, 2u);
}

TEST(NetworkT, MirrorsGraph) {
  const auto g = net::line_topology(4, net::Capacity{100.0}, 5);
  Network net(g, kMillisecond, 1e6);
  EXPECT_EQ(net.switch_count(), 4u);
  EXPECT_EQ(net.link_count(), 3u);
  const SimLink& l = net.link(*net.link_between(0, 1));
  EXPECT_EQ(l.delay, 5 * kMillisecond);
  EXPECT_DOUBLE_EQ(l.capacity_bps, 100e6);
  EXPECT_EQ(net.link_on_port(0, l.src_port), net.link_between(0, 1));
  EXPECT_EQ(net.port_towards(0, 1), l.src_port);
  EXPECT_THROW(net.port_towards(1, 0), std::invalid_argument);
}

TEST(TrafficT, SteadyFlowLoadsPath) {
  const auto g = net::line_topology(3, net::Capacity{100.0}, 1);
  Network net(g, kMillisecond, 1e6);
  // Install dst-based forwarding on switches 0 and 1, delivery at 2.
  for (SwitchId s = 0; s < 2; ++s) {
    FlowMod m;
    m.entry.match.dst_prefix = "10.0.2.";
    m.entry.action = Action::output(net.port_towards(s, s + 1));
    net.sw(s).apply(0, m);
  }
  FlowMod del;
  del.entry.match.dst_prefix = "10.0.2.";
  del.entry.action = Action::output(kHostPort);
  net.sw(2).apply(0, del);

  TrafficFlow flow;
  flow.name = "f";
  flow.header.dst = "10.0.2.1";
  flow.header.in_port = kHostPort;
  flow.ingress = 0;
  flow.rate_bps = 50e6;

  TraceOptions opts;
  opts.t_begin = 0;
  opts.t_end = 100 * kMillisecond;
  const TrafficReport rep = trace_traffic(net, {flow}, opts);
  EXPECT_TRUE(rep.clean());
  const auto series = bandwidth_series(net, *net.link_between(0, 1),
                                       10 * kMillisecond, 90 * kMillisecond,
                                       10 * kMillisecond);
  ASSERT_FALSE(series.empty());
  for (const double v : series) EXPECT_NEAR(v, 50e6, 1.0);
}

TEST(TrafficT, DetectsDropWithoutRules) {
  const auto g = net::line_topology(2, net::Capacity{100.0}, 1);
  Network net(g, kMillisecond, 1e6);
  TrafficFlow flow;
  flow.name = "f";
  flow.header.dst = "10.0.1.1";
  flow.ingress = 0;
  flow.rate_bps = 1e6;
  TraceOptions opts;
  opts.t_end = 10 * kMillisecond;
  const TrafficReport rep = trace_traffic(net, {flow}, opts);
  ASSERT_EQ(rep.drops.size(), 1u);
  EXPECT_EQ(rep.drops[0].at, 0u);
}

TEST(TrafficT, DetectsOverCapacity) {
  const auto g = net::line_topology(2, net::Capacity{10.0}, 1);  // 10 Mbps link
  Network net(g, kMillisecond, 1e6);
  FlowMod m;
  m.entry.match.dst_prefix = "10.";
  m.entry.action = Action::output(net.port_towards(0, 1));
  net.sw(0).apply(0, m);
  FlowMod d;
  d.entry.match.dst_prefix = "10.";
  d.entry.action = Action::output(kHostPort);
  net.sw(1).apply(0, d);

  TrafficFlow a;
  a.header.dst = "10.1";
  a.ingress = 0;
  a.rate_bps = 8e6;
  TrafficFlow b = a;
  b.name = "b";
  TraceOptions opts;
  opts.t_end = 20 * kMillisecond;
  const TrafficReport rep = trace_traffic(net, {a, b}, opts);
  ASSERT_FALSE(rep.congestion.empty());
  EXPECT_NEAR(rep.congestion[0].peak_bps, 16e6, 1.0);
}

TEST(TrafficT, DetectsForwardingLoop) {
  net::Graph g;
  g.add_nodes(2);
  g.add_link(0, 1, net::Capacity{100.0}, 1);
  g.add_link(1, 0, net::Capacity{100.0}, 1);
  Network net(g, kMillisecond, 1e6);
  FlowMod m0;
  m0.entry.match.dst_prefix = "10.";
  m0.entry.action = Action::output(net.port_towards(0, 1));
  net.sw(0).apply(0, m0);
  FlowMod m1;
  m1.entry.match.dst_prefix = "10.";
  m1.entry.action = Action::output(net.port_towards(1, 0));
  net.sw(1).apply(0, m1);

  TrafficFlow flow;
  flow.header.dst = "10.1";
  flow.ingress = 0;
  flow.rate_bps = 1e6;
  TraceOptions opts;
  opts.t_end = 10 * kMillisecond;
  const TrafficReport rep = trace_traffic(net, {flow}, opts);
  EXPECT_FALSE(rep.loops.empty());
}

TEST(TrafficT, VlanStampingIsApplied) {
  const auto g = net::line_topology(3, net::Capacity{100.0}, 1);
  Network net(g, kMillisecond, 1e6);
  // Ingress stamps vlan 2; transit matches vlan 2 only.
  FlowMod stamp;
  stamp.entry.priority = 20;
  stamp.entry.match.dst_prefix = "10.";
  stamp.entry.match.in_port = kHostPort;
  stamp.entry.action = Action::set_vlan_output(2, net.port_towards(0, 1));
  net.sw(0).apply(0, stamp);
  FlowMod transit;
  transit.entry.match.dst_prefix = "10.";
  transit.entry.match.vlan = 2;
  transit.entry.action = Action::output(net.port_towards(1, 2));
  net.sw(1).apply(0, transit);
  FlowMod deliver;
  deliver.entry.match.dst_prefix = "10.";
  deliver.entry.match.vlan = 2;
  deliver.entry.action = Action::output(kHostPort);
  net.sw(2).apply(0, deliver);

  TrafficFlow flow;
  flow.header.dst = "10.9";
  flow.header.in_port = kHostPort;
  flow.ingress = 0;
  flow.rate_bps = 1e6;
  TraceOptions opts;
  opts.t_end = 10 * kMillisecond;
  const TrafficReport rep = trace_traffic(net, {flow}, opts);
  EXPECT_TRUE(rep.clean());
  EXPECT_GT(net.link(*net.link_between(1, 2)).offered_bps.at(5 * kMillisecond),
            0.0);
}

TEST(ControllerT, InstallNowIsImmediate) {
  const auto g = net::line_topology(2, net::Capacity{100.0}, 1);
  Network net(g, kMillisecond, 1e6);
  EventQueue eq;
  util::Rng rng(1);
  Controller ctrl(eq, net, rng);
  FlowEntry e;
  e.match.dst_prefix = "10.";
  e.action = Action::output(0);
  ctrl.install_now(0, e);
  ctrl.flush();
  EXPECT_EQ(net.sw(0).table().size(), 1u);
}

TEST(ControllerT, FlowModLatencyIsPositiveAndFifo) {
  const auto g = net::line_topology(2, net::Capacity{100.0}, 1);
  Network net(g, kMillisecond, 1e6);
  EventQueue eq;
  util::Rng rng(2);
  Controller ctrl(eq, net, rng);
  FlowMod m;
  m.entry.action = Action::output(0);
  SimTime prev = 0;
  for (int i = 0; i < 20; ++i) {
    m.entry.priority = i;  // distinct entries
    const SimTime at = ctrl.send_flow_mod(0, m);
    EXPECT_GT(at, 0);
    EXPECT_GE(at, prev);  // per-switch FIFO
    prev = at;
  }
  ctrl.flush();
  EXPECT_EQ(net.sw(0).mods_applied(), 20u);
}

TEST(ControllerT, TimedModsFireNearSchedule) {
  const auto g = net::line_topology(2, net::Capacity{100.0}, 1);
  Network net(g, kMillisecond, 1e6);
  EventQueue eq;
  util::Rng rng(3);
  ControlChannelModel model;
  model.sync_error_stddev = 5;  // 5 us clock error
  Controller ctrl(eq, net, rng, model);
  FlowMod m;
  m.entry.action = Action::output(0);
  const SimTime target = 2 * kSecond;
  const SimTime applied = ctrl.send_timed_flow_mod(0, m, target);
  EXPECT_NEAR(static_cast<double>(applied), static_cast<double>(target), 50.0);
  ctrl.flush();
}

TEST(ControllerT, LateTimedModExecutesOnArrival) {
  const auto g = net::line_topology(2, net::Capacity{100.0}, 1);
  Network net(g, kMillisecond, 1e6);
  EventQueue eq;
  util::Rng rng(4);
  Controller ctrl(eq, net, rng);
  FlowMod m;
  m.entry.action = Action::output(0);
  // Scheduled in the past: applied when it reaches the switch.
  const SimTime applied = ctrl.send_timed_flow_mod(0, m, 0);
  EXPECT_GT(applied, 0);
}

TEST(ControllerT, BarrierWaitsForPendingMods) {
  const auto g = net::line_topology(2, net::Capacity{100.0}, 1);
  Network net(g, kMillisecond, 1e6);
  EventQueue eq;
  util::Rng rng(5);
  Controller ctrl(eq, net, rng);
  FlowMod m;
  m.entry.action = Action::output(0);
  const SimTime applied = ctrl.send_timed_flow_mod(0, m, 5 * kSecond);
  const SimTime reply = ctrl.barrier(0);
  EXPECT_GT(reply, applied);
}

TEST(ControllerT, AdvanceClockIsMonotone) {
  const auto g = net::line_topology(2, net::Capacity{100.0}, 1);
  Network net(g, kMillisecond, 1e6);
  EventQueue eq;
  util::Rng rng(6);
  Controller ctrl(eq, net, rng);
  ctrl.advance_clock(100);
  ctrl.advance_clock(50);
  EXPECT_EQ(ctrl.clock(), 100);
}

}  // namespace
}  // namespace chronus::sim
